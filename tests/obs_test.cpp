// Observability layer: registry counters/histograms under concurrent
// updates, snapshot consistency, Chrome trace JSON structure, and the
// ConcurrentNetwork visit probe against the analytical contention model.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>

#include "core/k_network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/contention_model.h"
#include "perf/thread_pool.h"
#include "sim/concurrent_sim.h"

namespace scn {
namespace {

// -------------------------------------------------------------- metrics

TEST(Metrics, CounterConcurrentAddsAreExact) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("test.adds");
  constexpr int kTasks = 16;
  constexpr int kAddsPerTask = 10000;
  ThreadPool pool(4);
  for (int t = 0; t < kTasks; ++t) {
    pool.submit([&c] {
      for (int i = 0; i < kAddsPerTask; ++i) c.add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kTasks) * kAddsPerTask);
  EXPECT_EQ(reg.value("test.adds"),
            static_cast<std::uint64_t>(kTasks) * kAddsPerTask);
}

TEST(Metrics, CounterSameNameIsSameObject) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("test.same");
  obs::Counter& b = reg.counter("test.same");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Metrics, HistogramConcurrentRecordsKeepExactCountAndSum) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("test.hist");
  constexpr int kTasks = 8;
  constexpr std::uint64_t kPerTask = 5000;
  ThreadPool pool(4);
  for (int t = 0; t < kTasks; ++t) {
    pool.submit([&h] {
      for (std::uint64_t v = 1; v <= kPerTask; ++v) h.record(v);
    });
  }
  pool.wait_idle();
  const obs::Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kTasks) * kPerTask);
  EXPECT_EQ(snap.sum, kTasks * (kPerTask * (kPerTask + 1) / 2));
  EXPECT_DOUBLE_EQ(snap.mean(), (kPerTask + 1) / 2.0);
}

TEST(Metrics, HistogramBucketsAndQuantileBounds) {
  obs::Histogram h;
  // bucket b = bit_width(v) covers [2^(b-1), 2^b); quantiles answer the
  // containing bucket's upper bound 2^b - 1.
  h.record(0);    // bucket 0
  h.record(1);    // bucket 1
  h.record(2);    // bucket 2
  h.record(3);    // bucket 2
  h.record(100);  // bucket 7 (64..127)
  const obs::Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 106u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 2u);
  EXPECT_EQ(snap.buckets[7], 1u);
  EXPECT_EQ(snap.quantile_upper_bound(0.2), 0u);   // first of 5
  EXPECT_EQ(snap.quantile_upper_bound(0.5), 3u);   // 3rd value is in bucket 2
  EXPECT_EQ(snap.quantile_upper_bound(0.99), 127u);
  EXPECT_EQ(snap.max_upper_bound(), 127u);
}

TEST(Metrics, EmptyHistogramIsZeroes) {
  const obs::Histogram::Snapshot snap = obs::Histogram().snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
  EXPECT_EQ(snap.quantile_upper_bound(0.5), 0u);
  EXPECT_EQ(snap.max_upper_bound(), 0u);
}

TEST(Metrics, SnapshotIsSortedByNameWithCorrectKinds) {
  obs::MetricsRegistry reg;
  reg.counter("c.second").add(7);
  reg.histogram("b.hist").record(42);
  reg.register_gauge("a.gauge", [] { return std::uint64_t{11}; });
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.gauge");
  EXPECT_EQ(snap[0].kind, obs::MetricKind::kGauge);
  EXPECT_EQ(snap[0].value, 11u);
  EXPECT_EQ(snap[1].name, "b.hist");
  EXPECT_EQ(snap[1].kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(snap[1].histogram.count, 1u);
  EXPECT_EQ(snap[1].histogram.sum, 42u);
  EXPECT_EQ(snap[2].name, "c.second");
  EXPECT_EQ(snap[2].kind, obs::MetricKind::kCounter);
  EXPECT_EQ(snap[2].value, 7u);
  EXPECT_STREQ(obs::to_string(obs::MetricKind::kGauge), "gauge");
}

TEST(Metrics, ResetZeroesCountersAndHistogramsButSamplesGaugesLive) {
  obs::MetricsRegistry reg;
  std::uint64_t backing = 5;
  obs::Counter& c = reg.counter("r.counter");
  obs::Histogram& h = reg.histogram("r.hist");
  reg.register_gauge("r.gauge", [&backing] { return backing; });
  c.add(9);
  h.record(16);
  reg.reset();
  backing = 6;
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(reg.value("r.gauge"), 6u);  // gauges are live views, not state
  // Addresses stay valid after reset: the macro-cached references work.
  c.add(2);
  EXPECT_EQ(reg.value("r.counter"), 2u);
}

TEST(Metrics, UnknownNameReadsAsZero) {
  const obs::MetricsRegistry reg;
  EXPECT_EQ(reg.value("never.registered"), 0u);
}

TEST(Metrics, CrossKindNameCollisionNeverInvalidatesExistingMetric) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("x.name");
  c.add(4);
  // Registering a gauge under a counter's name must not destroy the
  // counter (call sites hold cached references into it).
  reg.register_gauge("x.name", [] { return std::uint64_t{99}; });
  c.add(1);  // still a valid object
  EXPECT_EQ(reg.value("x.name"), 5u);  // and still the reported metric
  // Requesting the wrong kind for a bound name yields a usable sink
  // instead of throwing; the registered metric keeps reporting.
  obs::Histogram& hist_sink = reg.histogram("x.name");
  hist_sink.record(7);
  EXPECT_EQ(reg.value("x.name"), 5u);
  reg.register_gauge("g.name", [] { return std::uint64_t{1}; });
  obs::Counter& counter_sink = reg.counter("g.name");
  counter_sink.add(3);
  EXPECT_EQ(reg.value("g.name"), 1u);  // gauge untouched
}

TEST(Metrics, GaugeReregistrationReplacesCallback) {
  obs::MetricsRegistry reg;
  reg.register_gauge("g.live", [] { return std::uint64_t{1}; });
  reg.register_gauge("g.live", [] { return std::uint64_t{2}; });
  EXPECT_EQ(reg.value("g.live"), 2u);
}

// --------------------------------------------------------------- tracer

// Structural check, not a full parser: braces/brackets balance outside
// string literals, so the file loads in chrome://tracing.
void expect_balanced_json(const std::string& json) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Trace, RecordedEventsExportChromeCompleteEvents) {
  obs::Tracer tracer;
  tracer.start();
  tracer.record_complete("work", "test", 1500, 2500, "{\"k\":1}");
  tracer.record_complete("more \"quoted\"", "test", 5000, 1000);
  tracer.stop();
  EXPECT_EQ(tracer.event_count(), 2u);
  EXPECT_EQ(tracer.dropped_count(), 0u);
  const std::string json = tracer.chrome_trace_json();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"work\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // ns are exported as fractional microseconds.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"k\":1}"), std::string::npos);
  // Quotes in names are escaped, keeping the JSON loadable.
  EXPECT_NE(json.find("more \\\"quoted\\\""), std::string::npos);
}

TEST(Trace, InactiveTracerRecordsNothing) {
  obs::Tracer tracer;
  tracer.record_complete("ignored", "test", 0, 1);
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.now_ns(), 0u);
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
  expect_balanced_json(json);
}

TEST(Trace, StartClearsPreviousSession) {
  obs::Tracer tracer;
  tracer.start();
  tracer.record_complete("old", "test", 0, 1);
  tracer.stop();
  tracer.start();
  tracer.stop();
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(Trace, ScopedSpanRecordsOnlyWhileSharedTracerActive) {
  obs::Tracer& shared = obs::Tracer::shared();
  shared.clear();
  { const obs::ScopedSpan idle("test", "not-recorded"); }
  EXPECT_EQ(shared.event_count(), 0u);
  shared.start();
  {
    obs::ScopedSpan span("test", "recorded");
    EXPECT_TRUE(span.armed());
    span.set_args_json("{\"n\":3}");
  }
  // A span that straddles stop() is dropped, not recorded half-open.
  const std::size_t recorded = shared.event_count();
  obs::ScopedSpan straddler("test", "straddles-stop");
  shared.stop();
  EXPECT_EQ(recorded, 1u);
  EXPECT_EQ(shared.event_count(), 1u);
  const std::string json = shared.chrome_trace_json();
  EXPECT_NE(json.find("\"name\":\"recorded\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"n\":3}"), std::string::npos);
  shared.clear();
}

TEST(Trace, TraceSessionWritesLoadableFile) {
  const std::string path = testing::TempDir() + "scnet_obs_test_trace.json";
  {
    obs::TraceSession session(path);
    EXPECT_EQ(session.path(), path);
    obs::ScopedSpan span("test", "session-span");
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"session-span\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, TraceSessionReportsWriteFailure) {
  const std::string good = testing::TempDir() + "scnet_obs_test_finish.json";
  {
    obs::TraceSession session(good);
    EXPECT_FALSE(session.ok());  // not written yet
    EXPECT_TRUE(session.finish());
    EXPECT_TRUE(session.ok());
    EXPECT_TRUE(session.finish());  // idempotent
  }
  std::remove(good.c_str());

  obs::TraceSession bad(testing::TempDir() +
                        "scnet_obs_no_such_dir/trace.json");
  EXPECT_FALSE(bad.finish());
  EXPECT_FALSE(bad.ok());
}

// ---------------------------------------------------------- visit probe

TEST(VisitProbe, OffByDefaultAndEmpty) {
  const Network net = make_k_network({2, 2});
  ConcurrentNetwork cn(net);
  EXPECT_FALSE(cn.visit_probe_enabled());
  EXPECT_TRUE(cn.gate_visits().empty());
  cn.traverse(0);  // no probe: traversal must still work
  EXPECT_TRUE(cn.gate_visits().empty());
}

TEST(VisitProbe, CountsEveryHopAndResets) {
  // K(2x2): every token crosses one depth-1 gate then one depth-2 gate.
  const Network net = make_k_network({2, 2});
  ConcurrentNetwork cn(net);
  cn.enable_visit_probe();
  ASSERT_TRUE(cn.visit_probe_enabled());
  for (int i = 0; i < 12; ++i) cn.traverse(static_cast<Wire>(i % 4));
  const std::vector<std::uint64_t> visits = cn.gate_visits();
  ASSERT_EQ(visits.size(), net.gate_count());
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), std::uint64_t{0}),
            12u * net.depth());
  cn.reset();
  const std::vector<std::uint64_t> after = cn.gate_visits();
  EXPECT_EQ(std::accumulate(after.begin(), after.end(), std::uint64_t{0}), 0u);
}

TEST(VisitProbe, MeasuredTrafficMatchesContentionModel) {
  const Network net = make_k_network({4, 4});
  ConcurrentNetwork cn(net);
  cn.enable_visit_probe();
  const ConcurrentRunResult run = run_concurrent(cn, 2, 20000, /*seed=*/7);
  const std::vector<std::uint64_t> visits = cn.gate_visits();

  // Mean measured hops per token == the model's mean path length.
  const auto total_hops =
      std::accumulate(visits.begin(), visits.end(), std::uint64_t{0});
  const ContentionEstimate est = estimate_contention(net);
  EXPECT_NEAR(static_cast<double>(total_hops) /
                  static_cast<double>(run.tokens),
              est.hops_per_token, 1e-9);

  // Hottest-gate traffic within the documented 10% tolerance
  // (docs/observability.md; bench_obs_overhead gates the same bound).
  const ContentionComparison cmp =
      compare_contention(net, visits, run.tokens);
  EXPECT_EQ(cmp.tokens, run.tokens);
  EXPECT_GT(cmp.predicted_hottest, 0.0);
  EXPECT_LE(cmp.hottest_relative_error(), 0.10)
      << "predicted " << cmp.predicted_hottest << " measured "
      << cmp.measured_hottest;
  EXPECT_LE(cmp.mean_abs_error, 0.05);
}

TEST(VisitProbe, CompareContentionWithoutProbeDataTreatsGatesAsUnvisited) {
  // A probe that was never enabled yields an empty visit vector; the
  // comparison must stay in bounds and report zero measured traffic.
  const Network net = make_k_network({4, 4});
  const std::vector<std::uint64_t> no_visits;
  const ContentionComparison cmp = compare_contention(net, no_visits, 100);
  EXPECT_GT(cmp.predicted_hottest, 0.0);
  EXPECT_EQ(cmp.measured_hottest, 0.0);
  EXPECT_EQ(cmp.tokens, 100u);
}

}  // namespace
}  // namespace scn
