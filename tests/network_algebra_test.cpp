// Algebraic laws of the network combinators, checked behaviorally: compose
// is associative, relabel distributes over compose, serialization commutes
// with everything, and the engines agree across transformed networks.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "baseline/batcher.h"
#include "core/k_network.h"
#include "net/serialize.h"
#include "net/transform.h"
#include "seq/generators.h"
#include "sim/count_sim.h"

namespace scn {
namespace {

std::vector<Count> behavior(const Network& net, std::uint64_t seed) {
  // Fingerprint: concatenated outputs for a deterministic input family.
  std::mt19937_64 rng(seed);
  std::vector<Count> fp;
  for (int t = 0; t < 12; ++t) {
    const auto in = random_count_vector(rng, net.width(), 10 + 7 * t);
    const auto out = output_counts(net, in);
    fp.insert(fp.end(), out.begin(), out.end());
  }
  return fp;
}

TEST(Algebra, ComposeIsBehaviorallyAssociative) {
  const Network a = make_batcher_network(8);
  const Network b = make_k_network({2, 2, 2});
  const Network c = make_k_network({4, 2});
  const Network left = compose(compose(a, b), c);
  const Network right = compose(a, compose(b, c));
  EXPECT_EQ(behavior(left, 5), behavior(right, 5));
  EXPECT_EQ(left.gate_count(), right.gate_count());
}

TEST(Algebra, IdentityIsComposeNeutral) {
  const Network id = NetworkBuilder(6).finish_identity();
  const Network k = make_k_network({3, 2});
  EXPECT_EQ(behavior(compose(id, k), 7), behavior(k, 7));
  EXPECT_EQ(behavior(compose(k, id), 7), behavior(k, 7));
}

TEST(Algebra, RelabelByInverseIsIdentity) {
  const Network k = make_k_network({2, 2, 2});
  std::mt19937_64 rng(9);
  std::vector<Wire> perm(k.width());
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);
  std::vector<Wire> inv(k.width());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    inv[static_cast<std::size_t>(perm[i])] = static_cast<Wire>(i);
  }
  const Network back = relabel(relabel(k, perm), inv);
  // Gate-for-gate identical to the original.
  ASSERT_EQ(back.gate_count(), k.gate_count());
  for (std::size_t g = 0; g < k.gate_count(); ++g) {
    const auto wa = k.gate_wires(g);
    const auto wb = back.gate_wires(g);
    EXPECT_TRUE(std::equal(wa.begin(), wa.end(), wb.begin(), wb.end()));
  }
  EXPECT_TRUE(std::equal(back.output_order().begin(),
                         back.output_order().end(),
                         k.output_order().begin()));
}

TEST(Algebra, SerializationCommutesWithCompose) {
  const Network a = make_k_network({2, 3});
  const Network b = make_k_network({3, 2});
  const Network ab = compose(a, b);
  const auto round_trip = parse_network(serialize_network(ab));
  ASSERT_TRUE(round_trip.network.has_value()) << round_trip.error;
  EXPECT_EQ(behavior(*round_trip.network, 11), behavior(ab, 11));
}

TEST(Algebra, PrefixOfComposeEqualsFirstComponent) {
  const Network a = make_k_network({2, 2, 2});
  const Network b = make_k_network({2, 2, 2});
  const Network ab = compose(a, b);
  const Network pre = prefix_layers(ab, a.depth());
  ASSERT_EQ(pre.gate_count(), a.gate_count());
  for (std::size_t g = 0; g < a.gate_count(); ++g) {
    const auto wa = a.gate_wires(g);
    const auto wb = pre.gate_wires(g);
    EXPECT_TRUE(std::equal(wa.begin(), wa.end(), wb.begin(), wb.end()));
  }
}

TEST(Algebra, DoubleCountingNetworkStillCountsAndFixesNothingNew) {
  // Composing a counting network with itself: outputs unchanged beyond the
  // first pass (the step sequence is a fixed point).
  const Network k = make_k_network({2, 2, 2});
  const Network kk = compose(k, k);
  EXPECT_EQ(behavior(kk, 13), behavior(k, 13));
}

}  // namespace
}  // namespace scn
