// Pass-pipeline soundness: each pass (and each shipped pipeline level) must
// preserve comparator behavior exactly — proven exhaustively over all 2^w
// 0-1 inputs at small widths (the 0-1 principle lifts that to all inputs)
// — and, for the semantics-free passes, quiescent counting behavior too.
// Larger widths get randomized cross-engine agreement: per-gate interpreter
// on the original network vs compiled plan on the optimized one.
#include <gtest/gtest.h>

#include <random>

#include "baseline/batcher.h"
#include "baseline/bitonic.h"
#include "baseline/bubble.h"
#include "core/k_network.h"
#include "core/l_network.h"
#include "engine/batch_engine.h"
#include "net/serialize.h"
#include "net/transform.h"
#include "opt/pass.h"
#include "opt/passes.h"
#include "opt/plan_cache.h"
#include "seq/generators.h"
#include "sim/comparator_sim.h"
#include "sim/count_sim.h"
#include "verify/counting_verify.h"

namespace scn {
namespace {

/// Exhaustive 0-1 equivalence of two same-width comparator networks. By
/// the 0-1 principle, agreement on all 2^w binary inputs proves agreement
/// on all inputs.
void expect_zero_one_equivalent(const Network& a, const Network& b) {
  ASSERT_EQ(a.width(), b.width());
  ASSERT_LE(a.width(), 12u);
  const std::size_t w = a.width();
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << w); ++x) {
    std::vector<Count> in(w);
    for (std::size_t i = 0; i < w; ++i) {
      in[i] = static_cast<Count>((x >> i) & 1u);
    }
    ASSERT_EQ(comparator_output_counts(a, in),
              comparator_output_counts(b, in))
        << "0-1 input " << x;
  }
}

/// Quiescent-count equivalence over structured + random count vectors.
void expect_counting_equivalent(const Network& a, const Network& b) {
  ASSERT_EQ(a.width(), b.width());
  std::mt19937_64 rng(11);
  for (Count total = 0; total <= static_cast<Count>(3 * a.width() + 5);
       ++total) {
    for (const auto& in : structured_count_vectors(a.width(), total)) {
      ASSERT_EQ(output_counts(a, in), output_counts(b, in));
    }
    for (int t = 0; t < 4; ++t) {
      const auto in = random_count_vector(rng, a.width(), total);
      ASSERT_EQ(output_counts(a, in), output_counts(b, in));
    }
  }
}

TEST(RelayerPass, PreservesBothSemanticsAndIsIdempotent) {
  const Network net = make_l_network({2, 3});
  const auto pass = make_relayer_pass();
  const PassOptions opts;
  ASSERT_TRUE(pass->applicable(net, opts));
  const Network once = pass->run(net, opts);
  EXPECT_TRUE(once.validate().empty());
  EXPECT_EQ(once.gate_count(), net.gate_count());
  EXPECT_EQ(once.depth(), net.depth());
  expect_zero_one_equivalent(net, once);
  expect_counting_equivalent(net, once);
  const Network twice = pass->run(once, opts);
  EXPECT_EQ(serialize_network(once), serialize_network(twice));
}

TEST(RelayerPass, CanonicalizesIndependentGateOrder) {
  NetworkBuilder a(6);
  a.add_balancer({4, 5});
  a.add_balancer({0, 1});
  a.add_balancer({2, 3});
  NetworkBuilder b(6);
  b.add_balancer({0, 1});
  b.add_balancer({2, 3});
  b.add_balancer({4, 5});
  const Network na = std::move(a).finish_identity();
  const Network nb = std::move(b).finish_identity();
  const auto pass = make_relayer_pass();
  EXPECT_EQ(serialize_network(pass->run(na, {})),
            serialize_network(pass->run(nb, {})));
}

TEST(DedupAdjacentPass, CollapsesRunsOfIdenticalGates) {
  NetworkBuilder b(5);
  b.add_balancer({0, 1});
  b.add_balancer({0, 1});  // duplicate
  b.add_balancer({2, 3, 4});
  b.add_balancer({2, 3, 4});  // duplicate wide gate
  b.add_balancer({2, 3, 4});  // triple collapses too
  b.add_balancer({0, 1});     // duplicate across the untouched gap
  b.add_balancer({1, 2});     // NOT a duplicate: wire sets differ
  b.add_balancer({0, 1});     // NOT a duplicate: {1} was touched since
  const Network net = std::move(b).finish_identity();
  const auto pass = make_dedup_adjacent_pass();
  const Network out = pass->run(net, {});
  EXPECT_TRUE(out.validate().empty());
  EXPECT_EQ(out.gate_count(), 4u);
  expect_zero_one_equivalent(net, out);
  expect_counting_equivalent(net, out);
}

TEST(DedupAdjacentPass, KeepsGatesWithPermutedWireLists) {
  // Same wire set, different listed order: the second gate re-routes which
  // ranked value lands where and must survive.
  NetworkBuilder b(2);
  b.add_balancer({0, 1});
  b.add_balancer({1, 0});
  const Network net = std::move(b).finish_identity();
  const Network out = make_dedup_adjacent_pass()->run(net, {});
  EXPECT_EQ(out.gate_count(), 2u);
}

TEST(ZeroOneElimPass, RemovesEveryGateOfARedundantSecondSortingPass) {
  // Sorting an already-sorted stream: every comparator of the second
  // network is provably dead. This is the acceptance case: elimination
  // removes >= 1 gate on a constructed (composed) network.
  const Network batcher = make_batcher_network(8);
  const Network bubble = make_bubble_network(8);
  const Network composed = compose(batcher, bubble);
  const PassOptions opts{.semantics = Semantics::kComparator};
  const auto pass = make_zero_one_elim_pass();
  ASSERT_TRUE(pass->applicable(composed, opts));
  const Network out = pass->run(composed, opts);
  EXPECT_TRUE(out.validate().empty());
  EXPECT_EQ(out.gate_count(), batcher.gate_count());
  EXPECT_LE(out.depth(), batcher.depth());
  expect_zero_one_equivalent(composed, out);
}

TEST(ZeroOneElimPass, SkipsBalancerSemanticsAndWideNetworks) {
  const Network net = make_k_network({2, 2});
  const auto pass = make_zero_one_elim_pass();
  EXPECT_FALSE(pass->applicable(
      net, PassOptions{.semantics = Semantics::kBalancer}));
  EXPECT_FALSE(pass->applicable(
      make_l_network({5, 4}),
      PassOptions{.semantics = Semantics::kComparator,
                  .zero_one_width_cap = 16}));
}

TEST(ZeroOneElimPass, KeepsEveryGateOfAMinimalNetwork) {
  // Every comparator of odd-even transposition sort fires on some input;
  // elimination must be a no-op.
  const Network net = make_bubble_network(6);
  const Network out = make_zero_one_elim_pass()->run(
      net, PassOptions{.semantics = Semantics::kComparator});
  EXPECT_EQ(out.gate_count(), net.gate_count());
}

TEST(ExpandWideGatesPass, ProducesEquivalentPureWidth2Network) {
  const Network net = make_k_network({2, 3});
  ASSERT_GT(net.max_gate_width(), 2u);
  const PassOptions opts{.semantics = Semantics::kComparator};
  const auto pass = make_expand_wide_gates_pass();
  ASSERT_TRUE(pass->applicable(net, opts));
  EXPECT_FALSE(pass->never_increases_depth());
  const Network out = pass->run(net, opts);
  EXPECT_TRUE(out.validate().empty());
  EXPECT_LE(out.max_gate_width(), 2u);
  expect_zero_one_equivalent(net, out);
}

TEST(ExpandWideGatesPass, SkippedForBalancersSoCountingSurvives) {
  // Under balancer semantics the aggressive pipeline may not expand (a
  // wide balancer is not a network of 2-balancers — Figure 3), so the
  // optimized network must still count.
  const Network net = make_k_network({2, 3});
  const PipelineResult result =
      optimize_network(net, PassLevel::kAggressive,
                       PassOptions{.semantics = Semantics::kBalancer});
  EXPECT_EQ(result.network.max_gate_width(), net.max_gate_width());
  EXPECT_TRUE(verify_counting(result.network).ok);
  expect_counting_equivalent(net, result.network);
}

TEST(Pipeline, DefaultRemovesGatesFromComposedNetworksAndStaysEquivalent) {
  const Network composed =
      compose(make_batcher_network(8), make_bubble_network(8));
  const PipelineResult result =
      optimize_network(composed, PassLevel::kDefault,
                       PassOptions{.semantics = Semantics::kComparator});
  EXPECT_GE(result.gates_removed(), make_bubble_network(8).gate_count());
  EXPECT_GT(result.layers_removed(), 0u);
  EXPECT_LE(result.network.depth(), composed.depth());
  expect_zero_one_equivalent(composed, result.network);
}

TEST(Pipeline, ProvenanceRecordsEveryConfiguredPass) {
  const Network net = make_k_network({2, 2});
  const PipelineResult result =
      optimize_network(net, PassLevel::kDefault,
                       PassOptions{.semantics = Semantics::kBalancer});
  ASSERT_EQ(result.passes.size(), 4u);
  EXPECT_EQ(result.passes[0].name, "relayer");
  EXPECT_EQ(result.passes[1].name, "dedup-adjacent");
  EXPECT_EQ(result.passes[2].name, "zero-one-elim");
  EXPECT_EQ(result.passes[3].name, "relayer");
  EXPECT_FALSE(result.passes[2].applied);  // balancer semantics => skipped
  // The stats chain is consistent: each pass starts where the last ended.
  for (std::size_t i = 1; i < result.passes.size(); ++i) {
    EXPECT_EQ(result.passes[i].gates_before, result.passes[i - 1].gates_after);
    EXPECT_EQ(result.passes[i].depth_before, result.passes[i - 1].depth_after);
  }
  EXPECT_FALSE(result.summary().empty());
}

TEST(Pipeline, LevelNoneIsIdentity) {
  const Network net = make_l_network({3, 2});
  const PipelineResult result = optimize_network(net, PassLevel::kNone);
  EXPECT_TRUE(result.passes.empty());
  EXPECT_EQ(serialize_network(result.network), serialize_network(net));
}

TEST(Pipeline, LevelParsingRoundTrips) {
  EXPECT_EQ(parse_pass_level("none"), PassLevel::kNone);
  EXPECT_EQ(parse_pass_level("default"), PassLevel::kDefault);
  EXPECT_EQ(parse_pass_level("aggressive"), PassLevel::kAggressive);
  EXPECT_FALSE(parse_pass_level("bogus").has_value());
  EXPECT_STREQ(to_string(PassLevel::kAggressive), "aggressive");
  EXPECT_STREQ(to_string(Semantics::kBalancer), "balancer");
}

class CrossEngineAgreement
    : public ::testing::TestWithParam<std::tuple<const char*, PassLevel>> {};

TEST_P(CrossEngineAgreement, InterpreterOnOriginalEqualsPlanOnOptimized) {
  const auto [kind, level] = GetParam();
  Network net;
  if (std::string_view(kind) == "K16") net = make_k_network({4, 4});
  if (std::string_view(kind) == "L18") net = make_l_network({3, 3, 2});
  if (std::string_view(kind) == "bitonic16") net = make_bitonic_network(4);
  if (std::string_view(kind) == "batcher24") net = make_batcher_network(24);
  ASSERT_GE(net.width(), 16u);

  const CachedPlan cached = compiled_plan(
      net, level, PassOptions{.semantics = Semantics::kComparator});
  std::mt19937_64 rng(1234);
  for (int trial = 0; trial < 60; ++trial) {
    const auto in = random_count_vector(rng, net.width(), 500);
    ASSERT_EQ(comparator_output_counts(net, in),
              plan_comparator_output(*cached.plan, in))
        << kind << " @ " << to_string(level) << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    NetworksAndLevels, CrossEngineAgreement,
    ::testing::Combine(::testing::Values("K16", "L18", "bitonic16",
                                         "batcher24"),
                       ::testing::Values(PassLevel::kNone, PassLevel::kDefault,
                                         PassLevel::kAggressive)),
    [](const auto& param_info) {
      return std::string(std::get<0>(param_info.param)) + "_" +
             to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace scn
