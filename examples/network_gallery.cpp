// Render the paper's constructions as ASCII wire diagrams and Graphviz DOT
// — the executable counterpart of Figures 2, 11, 12 and 13.
//
//   ./network_gallery           prints the gallery
//   ./network_gallery --dot DIR also writes .dot files into DIR
#include <cstdio>
#include <cstring>
#include <fstream>

#include "baseline/bitonic.h"
#include "core/bitonic_converter.h"
#include "core/counting_network.h"
#include "core/k_network.h"
#include "core/l_network.h"
#include "core/r_network.h"
#include "core/two_merger.h"
#include "net/export.h"

namespace {

using namespace scn;

void show(const char* title, const Network& net, const char* dot_dir) {
  std::printf("---- %s ----\n%s\n%s\n", title, summarize(net).c_str(),
              to_ascii(net).c_str());
  if (dot_dir != nullptr) {
    std::string base = std::string(dot_dir) + "/" + title;
    for (auto& c : base) {
      if (c == ' ' || c == '(' || c == ')' || c == ',') c = '_';
    }
    std::ofstream(base + ".dot") << to_dot(net, title);
    std::ofstream(base + ".svg") << to_svg(net, title);
    std::printf("(wrote %s.dot and %s.svg)\n", base.c_str(), base.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const char* dot_dir = nullptr;
  if (argc >= 3 && std::strcmp(argv[1], "--dot") == 0) dot_dir = argv[2];

  // Figure 11: the two-merger.
  show("two-merger T(3,2,2)", make_two_merger_network(3, 2, 2), dot_dir);
  // Figure 12: the bitonic-converter.
  show("bitonic-converter D(3,4)", make_bitonic_converter_network(3, 4),
       dot_dir);
  // Figure 13: the constant-depth R(p, q).
  show("R(5,5)", make_r_network(5, 5), dot_dir);
  // Figure 2's family: mixed balancer sizes on one topology.
  show("L(2,3,5) width 30", make_l_network({2, 3, 5}), dot_dir);
  // The K construction and the classic baseline.
  show("K(2,2,2) width 8", make_k_network({2, 2, 2}), dot_dir);
  show("bitonic width 8", make_bitonic_network(3), dot_dir);
  return 0;
}
