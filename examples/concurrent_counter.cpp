// A concurrent Fetch&Increment counter backed by a counting network — the
// application that motivated counting networks (paper §1). Spawns worker
// threads sharing one counter, checks every value was handed out exactly
// once, and compares against a single atomic and a mutex.
//
//   ./concurrent_counter [threads] [increments-per-thread]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/k_network.h"
#include "count/fetch_inc.h"

namespace {

using namespace scn;

struct RunStats {
  double seconds = 0;
  bool contiguous = false;
};

RunStats run(FetchIncCounter& counter, std::size_t threads,
             std::size_t per_thread) {
  std::vector<std::vector<std::uint64_t>> got(threads);
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      got[t].reserve(per_thread);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t i = 0; i < per_thread; ++i) {
        got[t].push_back(counter.next());
      }
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  const auto t1 = std::chrono::steady_clock::now();

  std::vector<std::uint64_t> all;
  for (auto& g : got) all.insert(all.end(), g.begin(), g.end());
  std::sort(all.begin(), all.end());
  bool contiguous = true;
  for (std::size_t i = 0; i < all.size(); ++i) contiguous &= all[i] == i;
  return {std::chrono::duration<double>(t1 - t0).count(), contiguous};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scn;
  const std::size_t threads =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const std::size_t per_thread =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 20000;
  const double total = static_cast<double>(threads * per_thread);

  std::printf("%zu threads x %zu increments each\n\n", threads, per_thread);
  std::printf("%-22s %10s %12s %12s\n", "counter", "seconds", "ops/sec",
              "all-values");

  AtomicCounter atomic_counter;
  const RunStats a = run(atomic_counter, threads, per_thread);
  std::printf("%-22s %10.4f %12.0f %12s\n", "atomic fetch_add", a.seconds,
              total / a.seconds, a.contiguous ? "exact 0..N-1" : "BROKEN");

  MutexCounter mutex_counter;
  const RunStats m = run(mutex_counter, threads, per_thread);
  std::printf("%-22s %10.4f %12.0f %12s\n", "mutex", m.seconds,
              total / m.seconds, m.contiguous ? "exact 0..N-1" : "BROKEN");

  for (const auto& factors :
       {std::vector<std::size_t>{4, 4}, {2, 2, 2, 2}, {8, 8}}) {
    const Network net = make_k_network(factors);
    NetworkCounter nc(net);
    const RunStats n = run(nc, threads, per_thread);
    char label[64];
    std::snprintf(label, sizeof label, "K net w=%zu depth=%u", net.width(),
                  net.depth());
    std::printf("%-22s %10.4f %12.0f %12s\n", label, n.seconds,
                total / n.seconds, n.contiguous ? "exact 0..N-1" : "BROKEN");
    if (!n.contiguous) return 1;
  }
  if (!a.contiguous || !m.contiguous) return 1;
  std::puts("\nall counters handed out each value exactly once.");
  return 0;
}
