// Hardware-style pipelined sorting: stream batches through the network one
// layer per cycle. Latency = depth cycles; steady-state throughput = one
// width-w batch per cycle REGARDLESS of depth — the regime where trading
// balancer width for depth (the paper's family) maps directly onto silicon
// area vs clock latency.
//
//   ./hardware_pipeline [batches]      (default 64)
#include <cstdio>
#include <cstdlib>
#include <random>

#include "baseline/batcher.h"
#include "core/factorization.h"
#include "core/k_network.h"
#include "seq/generators.h"
#include "sim/pipeline_sim.h"

int main(int argc, char** argv) {
  using namespace scn;
  const std::size_t batches =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;

  std::mt19937_64 rng(1);
  std::vector<std::vector<Count>> stream;
  for (std::size_t i = 0; i < batches; ++i) {
    stream.push_back(random_permutation(rng, 64));
  }

  std::printf("streaming %zu batches of 64 keys through pipelined sorters\n\n",
              batches);
  std::printf("%-12s %7s %10s %12s %16s\n", "network", "depth", "latency",
              "total cyc", "cycles/batch");
  for (const auto& [name, net] :
       {std::pair<const char*, Network>{"K(8x8)", make_k_network({8, 8})},
        {"K(4x4x4)", make_k_network({4, 4, 4})},
        {"K(2^6)", make_k_network({2, 2, 2, 2, 2, 2})},
        {"batcher64", make_batcher_network(64)}}) {
    const PipelineSimulator pipe(net);
    const auto result = pipe.run_batches(stream);
    // Validate every batch came out sorted (descending).
    for (const auto& out : result.outputs) {
      for (std::size_t i = 0; i + 1 < out.size(); ++i) {
        if (out[i] < out[i + 1]) {
          std::fprintf(stderr, "%s produced an unsorted batch!\n", name);
          return 1;
        }
      }
    }
    std::printf("%-12s %7u %10u %12llu %16.3f\n", name, net.depth(),
                net.depth(),
                static_cast<unsigned long long>(result.cycles),
                static_cast<double>(result.cycles) /
                    static_cast<double>(batches));
  }
  std::printf("\nall batches sorted; throughput converges to 1 batch/cycle "
              "for every depth —\nthe family lets you buy latency with wider "
              "comparators at constant throughput.\n");
  return 0;
}
