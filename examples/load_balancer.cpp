// Balancing networks as load balancers: route jobs from many producers to
// worker queues so that queue lengths never differ by more than one —
// the step property as a service-level guarantee. Compares against random
// assignment, which leaves a Theta(sqrt(n)) imbalance.
//
//   ./load_balancer [workers] [jobs]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "core/factorization.h"
#include "core/l_network.h"
#include "sim/concurrent_sim.h"
#include "verify/checkers.h"

int main(int argc, char** argv) {
  using namespace scn;
  const std::size_t workers =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;
  const std::size_t jobs = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 10007;
  if (workers < 4) {
    std::fprintf(stderr, "need >= 4 workers\n");
    return 1;
  }

  const auto factors = balanced_factorization(workers, 4);
  const Network net = make_l_network(factors);
  std::printf("dispatching %zu jobs to %zu worker queues via L(%s), depth %u\n\n",
              jobs, workers, format_factors(factors).c_str(), net.depth());

  std::mt19937_64 rng(99);
  std::uniform_int_distribution<std::size_t> producer_wire(0, workers - 1);

  // Network dispatch: each job enters the balancing network on the wire of
  // the producer that created it; the exit position is its worker queue.
  ConcurrentNetwork router(net);
  std::vector<std::size_t> net_queue(workers, 0);
  for (std::size_t j = 0; j < jobs; ++j) {
    const auto exit_event =
        router.traverse(static_cast<Wire>(producer_wire(rng)));
    net_queue[exit_event.position] += 1;
  }

  // Random dispatch baseline.
  std::vector<std::size_t> rnd_queue(workers, 0);
  for (std::size_t j = 0; j < jobs; ++j) rnd_queue[producer_wire(rng)] += 1;

  const auto imbalance = [](const std::vector<std::size_t>& q) {
    const auto [mn, mx] = std::minmax_element(q.begin(), q.end());
    return *mx - *mn;
  };
  std::printf("network queues : ");
  for (const std::size_t q : net_queue) std::printf("%zu ", q);
  std::printf("\n  imbalance (max-min) = %zu   (step property: always <= 1)\n\n",
              imbalance(net_queue));
  std::printf("random  queues : ");
  for (const std::size_t q : rnd_queue) std::printf("%zu ", q);
  std::printf("\n  imbalance (max-min) = %zu\n", imbalance(rnd_queue));

  return imbalance(net_queue) <= 1 ? 0 : 1;
}
