// scnet_cli — command-line front end to the library.
//
//   scnet_cli build K 2x3x5            emit the network as scnet text
//   scnet_cli build L 2x3x5
//   scnet_cli build R 7 9
//   scnet_cli build bitonic 16 | batcher 24 | bubble 5 | periodic 8
//   scnet_cli info < net.scnet         summary + depth/width stats
//   scnet_cli verify < net.scnet       counting + sorting verification
//   scnet_cli dot < net.scnet          Graphviz
//   scnet_cli export --dot [--overlay={none|contention|placement}]
//                      [--tokens N] [--title T] < net.scnet
//                                      clustered Graphviz with optional
//                                      metric overlays: contention drives
//                                      N tokens through the concurrent sim
//                                      and heat-colors gates by measured
//                                      visits; placement colors each layer
//                                      cluster by its topology node (set
//                                      SCNET_TOPOLOGY=2x4 to preview a
//                                      synthetic machine)
//   scnet_cli ascii < net.scnet        wire diagram
//   scnet_cli count t0,t1,... < net.scnet    quiescent outputs for a load
//   scnet_cli sort v0,v1,...  < net.scnet    comparator outputs for values
//   scnet_cli sort --engine=plan v0,...      same, via the compiled engine
//                                            (backend from SCNET_BACKEND,
//                                            default auto)
//   scnet_cli sort --engine=simd v0,...      compiled engine on a forced
//                                            backend (auto|scalar|batch|
//                                            simd|threaded)
//   scnet_cli sort --engine=plan --batch N   sort N random vectors (SoA
//                                            batch, backend by dispatch)
//   scnet_cli sort --engine=plan --passes=aggressive ...  pick the pass
//                                            pipeline level for the plan
//   scnet_cli optimize [--passes=L] [--semantics=S] < net.scnet
//                                            run the pass pipeline; stats to
//                                            stderr, optimized net to stdout
//   scnet_cli saturate [--shards N] [--threads N] [--tokens N]
//                      [--schedule KIND] [--factors 2x2x...] [--sync]
//                      [--seed S]          drive the sharded counting
//                                            service and verify counter
//                                            linearity at quiescence
//   scnet_cli tune [--quick] [--profile P] [--widths w0,w1,...] [--gate]
//                                            run the autotuning sweep
//                                            (src/tune/) and write the
//                                            machine profile; --gate exits
//                                            non-zero unless some width's
//                                            measured best beats the static
//                                            policy's choice (informational
//                                            on single-core hosts)
//   scnet_cli sort --profile=P ...           backend chosen from the
//                                            measured profile (static
//                                            fallback on mismatch)
//   scnet_cli saturate --profile=P ...       shard factorization chosen by
//                                            the profile-backed planner
//   scnet_cli build --stats K 2x3x5    also report construction time and
//                                            module-cache counters on stderr
//   scnet_cli optimize --stats < net.scnet   also report module-cache and
//                                            plan-cache counters on stderr
//
// Global options (any command, stripped before dispatch):
//   --metrics            dump the full metrics registry to stderr on exit
//   --trace out.json     record spans and write a chrome://tracing file
//   --isolated           run the command in a fresh private Runtime (own
//                        module/plan caches and metric namespace) instead of
//                        the process-wide Runtime::shared()
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <random>
#include <sstream>
#include <string>

#include "api/high_level.h"
#include "baseline/batcher.h"
#include "core/planner.h"
#include "baseline/bitonic.h"
#include "baseline/bubble.h"
#include "baseline/periodic.h"
#include "core/factorization.h"
#include "core/k_network.h"
#include "core/l_network.h"
#include "core/r_network.h"
#include "engine/backend.h"
#include "engine/batch_engine.h"
#include "engine/execution_plan.h"
#include "net/analyze.h"
#include "net/export.h"
#include "net/serialize.h"
#include "opt/pass.h"
#include "opt/plan_cache.h"
#include "perf/contention_model.h"
#include "perf/thread_pool.h"
#include "runtime/runtime.h"
#include "seq/generators.h"
#include "service/saturate.h"
#include "service/shard_manager.h"
#include "sim/comparator_sim.h"
#include "sim/concurrent_sim.h"
#include "sim/count_sim.h"
#include "sim/schedule.h"
#include "topo/placement.h"
#include "topo/topology.h"
#include "tune/experiment.h"
#include "tune/profile.h"
#include "verify/checkers.h"
#include "verify/counting_verify.h"
#include "verify/sorting_verify.h"

namespace {

using namespace scn;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  scnet_cli build [--stats] {K|L} <p0xp1x...>\n"
               "  scnet_cli build [--stats] R <p> <q>\n"
               "  scnet_cli build {bitonic|periodic} <width=2^k>\n"
               "  scnet_cli build {batcher|bubble} <width>\n"
               "  scnet_cli {info|analyze|svg|verify|dot|ascii} < net.scnet\n"
               "  scnet_cli export --dot "
               "[--overlay={none|contention|placement}] [--tokens N] "
               "[--title T] < net.scnet\n"
               "  scnet_cli count <t0,t1,...> < net.scnet\n"
               "  scnet_cli sort [--engine={interp|plan|auto|scalar|batch|"
               "simd|threaded}] "
               "[--passes={none|default|aggressive|optimal}] "
               "<v0,v1,...> < net.scnet\n"
               "  scnet_cli sort --engine=plan --batch <N> [--seed <s>] "
               "< net.scnet\n"
               "  scnet_cli optimize [--stats] "
               "[--passes={none|default|aggressive|optimal}] "
               "[--semantics={comparator|balancer}] < net.scnet\n"
               "  scnet_cli saturate [--shards N] [--threads N] [--tokens N]"
               " [--schedule {uniform|bursty|skewed|adversarial}]"
               " [--factors p0xp1x...] [--sync] [--seed S]"
               " [--profile <path>]\n"
               "  scnet_cli tune [--quick] [--profile <path>]"
               " [--widths w0,w1,...] [--gate]\n"
               "global options (any command):\n"
               "  --metrics            dump the metrics registry to stderr\n"
               "  --trace <out.json>   write a chrome://tracing span file\n"
               "  --isolated           run in a fresh private Runtime\n");
  return 2;
}

std::vector<std::size_t> parse_factors(const std::string& s) {
  std::vector<std::size_t> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, 'x')) {
    out.push_back(std::strtoul(item.c_str(), nullptr, 10));
  }
  return out;
}

std::vector<std::size_t> parse_size_list(const std::string& s) {
  std::vector<std::size_t> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(std::strtoul(item.c_str(), nullptr, 10));
  }
  return out;
}

// Loads a machine profile for --profile=<path>. Failure is never fatal:
// a missing/corrupt file or a foreign fingerprint degrades to the static
// policy with a stderr note, because a profile is an optimization hint.
std::optional<tune::MachineProfile> load_profile_or_warn(
    const std::string& path) {
  auto profile = tune::MachineProfile::load(path);
  if (!profile) {
    std::fprintf(stderr,
                 "profile: could not load %s; using static policy\n",
                 path.c_str());
    return std::nullopt;
  }
  if (!profile->matches_host()) {
    std::fprintf(stderr,
                 "profile: %s was measured on a different machine "
                 "(fingerprint %s, host %s); using static policy\n",
                 path.c_str(), profile->fingerprint().c_str(),
                 tune::MachineProfile::fingerprint_for(machine_caps())
                     .c_str());
    return std::nullopt;
  }
  return profile;
}

std::vector<Count> parse_counts(const std::string& s) {
  std::vector<Count> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(std::strtoll(item.c_str(), nullptr, 10));
  }
  return out;
}

std::size_t log2_exact(std::size_t w) {
  std::size_t k = 0;
  while ((std::size_t{1} << k) < w) ++k;
  if ((std::size_t{1} << k) != w) {
    std::fprintf(stderr, "width %zu is not a power of two\n", w);
    std::exit(2);
  }
  return k;
}

// The pinned one-report cache section shared by `build --stats` and
// `optimize --stats` (cli_test locks the field names and order).
void print_cache_stats(Runtime& rt) {
  const CacheStatsReport s = cache_stats(rt);
  const std::uint64_t module_total = s.module_hits + s.module_misses;
  std::fprintf(stderr,
               "module-cache: hits %llu misses %llu entries %zu bytes %zu "
               "hit-rate %.1f%%\n",
               static_cast<unsigned long long>(s.module_hits),
               static_cast<unsigned long long>(s.module_misses),
               s.module_entries, s.module_bytes,
               module_total == 0
                   ? 0.0
                   : 100.0 * static_cast<double>(s.module_hits) /
                         static_cast<double>(module_total));
  std::fprintf(stderr,
               "plan-cache: hits %llu misses %llu evictions %llu entries %zu "
               "capacity %zu\n",
               static_cast<unsigned long long>(s.plan_hits),
               static_cast<unsigned long long>(s.plan_misses),
               static_cast<unsigned long long>(s.plan_evictions),
               s.plan_entries, s.plan_capacity);
}

int cmd_build(Runtime& rt, int argc, char** argv) {
  bool stats = false;
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.size() < 2) return usage();
  const std::string& kind = args[0];
  const auto t0 = std::chrono::steady_clock::now();
  Network net;
  if (kind == "K" || kind == "L") {
    const auto factors = parse_factors(args[1]);
    for (const std::size_t f : factors) {
      if (f < 2) {
        std::fprintf(stderr, "factors must be >= 2\n");
        return 2;
      }
    }
    net = kind == "K" ? make_k_network(factors, rt)
                      : make_l_network(factors, rt);
  } else if (kind == "R") {
    if (args.size() < 3) return usage();
    const std::size_t p = std::strtoul(args[1].c_str(), nullptr, 10);
    const std::size_t q = std::strtoul(args[2].c_str(), nullptr, 10);
    if (p < 2 || q < 2) {
      std::fprintf(stderr, "R needs p, q >= 2\n");
      return 2;
    }
    net = make_r_network(p, q, rt);
  } else if (kind == "bitonic") {
    net = make_bitonic_network(
        log2_exact(std::strtoul(args[1].c_str(), nullptr, 10)));
  } else if (kind == "periodic") {
    net = make_periodic_network(
        log2_exact(std::strtoul(args[1].c_str(), nullptr, 10)));
  } else if (kind == "batcher") {
    net = make_batcher_network(std::strtoul(args[1].c_str(), nullptr, 10));
  } else if (kind == "bubble") {
    net = make_bubble_network(std::strtoul(args[1].c_str(), nullptr, 10));
  } else {
    return usage();
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (stats) {
    std::fprintf(
        stderr, "build: %s width %zu gates %zu depth %u in %.3f ms\n",
        kind.c_str(), net.width(), net.gate_count(), net.depth(),
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    print_cache_stats(rt);
  }
  std::fputs(serialize_network(net).c_str(), stdout);
  return 0;
}

int cmd_sort(Runtime& rt, const Network& net, int argc, char** argv) {
  std::string engine = "interp";
  std::size_t batch = 0;
  std::uint64_t seed = 42;
  PassLevel passes = default_pass_level();
  std::string values_arg;
  std::optional<tune::MachineProfile> profile;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--engine=", 0) == 0) {
      engine = arg.substr(9);
    } else if (arg.rfind("--profile=", 0) == 0) {
      profile = load_profile_or_warn(arg.substr(10));
    } else if (arg == "--profile" && i + 1 < argc) {
      profile = load_profile_or_warn(argv[++i]);
    } else if (arg.rfind("--passes=", 0) == 0) {
      const auto parsed = parse_pass_level(arg.substr(9));
      if (!parsed) {
        std::fprintf(stderr, "unknown pass level '%s'\n", arg.c_str() + 9);
        return 2;
      }
      passes = *parsed;
    } else if (arg == "--batch" && i + 1 < argc) {
      batch = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown sort option %s\n", arg.c_str());
      return 2;
    } else {
      values_arg = arg;
    }
  }
  // `interp` is the per-gate interpreter; `plan` is the compiled engine
  // under the runtime's backend request (SCNET_BACKEND, default auto); a
  // backend name is the compiled engine with that backend forced.
  std::optional<EngineBackend> forced;
  if (engine != "interp" && engine != "plan") {
    forced = parse_backend(engine);
    if (!forced) {
      std::fprintf(stderr,
                   "unknown engine '%s' (valid: interp|plan|auto|scalar|"
                   "batch|simd|threaded)\n",
                   engine.c_str());
      return 2;
    }
  }
  const auto plan_for_net = [&] {
    return rt.compiled(net, passes,
                       PassOptions{.semantics = Semantics::kComparator});
  };
  const auto backend_choice = [&](const CachedPlan& cached) {
    if (forced) return *forced;
    if (profile) {
      // Measured dispatch: the profile-backed select_backend() overload
      // (nearest measured cell for this width/lane count, static policy
      // when the profile has nothing to say). Backends agree on outputs,
      // so this only moves throughput, never results.
      return select_backend(engine::plan_shape(*cached.plan),
                            batch > 0 ? batch : 1, machine_caps(),
                            &*profile);
    }
    return cached.backend;
  };

  if (batch > 0) {
    // Batch demo/throughput mode: sort `batch` random vectors through the
    // compiled engine, cross-check one lane against the per-gate
    // interpreter, and report throughput.
    if (engine == "interp") {
      std::fprintf(stderr, "--batch requires --engine=plan\n");
      return 2;
    }
    const CachedPlan cached = plan_for_net();
    const ExecutionPlan& plan = *cached.plan;
    std::mt19937_64 rng(seed);
    std::vector<std::vector<Count>> inputs;
    inputs.reserve(batch);
    for (std::size_t j = 0; j < batch; ++j) {
      inputs.push_back(
          random_count_vector(rng, net.width(),
                              static_cast<Count>(17 * net.width())));
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto outs =
        scn::engine::sort_batch(plan, inputs, rt, backend_choice(cached));
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    const bool agree =
        outs.front() == comparator_output_counts(net, inputs.front());
    std::printf("sorted %zu vectors of width %zu in %.3f ms (%.0f vectors/s)\n",
                batch, net.width(), secs * 1e3,
                static_cast<double>(batch) / secs);
    std::printf("cross-check vs interpreter: %s\n", agree ? "PASS" : "FAIL");
    std::printf("lane 0: %s\n", format_sequence(outs.front()).c_str());
    return agree ? 0 : 1;
  }

  if (values_arg.empty()) return usage();
  const auto in = parse_counts(values_arg);
  if (in.size() != net.width()) {
    std::fprintf(stderr, "need %zu values\n", net.width());
    return 2;
  }
  std::vector<Count> out;
  if (engine == "interp") {
    out = comparator_output_counts(net, in);
  } else {
    const CachedPlan cached = plan_for_net();
    out = scn::engine::sorted_output(*cached.plan, in, backend_choice(cached));
  }
  std::printf("%s\n", format_sequence(out).c_str());
  return 0;
}

// Clustered DOT export with optional metric overlays. The contention
// overlay is self-contained: it drives --tokens tokens through the
// concurrent simulator (round-robin entry wires) with the visit probe on,
// so one pipeline — build | export — yields a heat-annotated figure. The
// placement overlay solves the layer partition for the runtime's topology
// (SCNET_TOPOLOGY renders synthetic machines) and reports the solver's
// rationale on stderr.
int cmd_export(Runtime& rt, const Network& net, int argc, char** argv) {
  bool dot = false;
  std::string overlay = "none";
  std::uint64_t tokens = 1000;
  DotOptions opts;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dot") {
      dot = true;
    } else if (arg.rfind("--overlay=", 0) == 0) {
      overlay = arg.substr(10);
    } else if (arg == "--tokens" && i + 1 < argc) {
      tokens = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--title" && i + 1 < argc) {
      opts.title = argv[++i];
    } else {
      std::fprintf(stderr, "unknown export option %s\n", arg.c_str());
      return 2;
    }
  }
  if (!dot) {
    std::fprintf(stderr, "export needs a format flag (--dot)\n");
    return 2;
  }
  // Overlay data must outlive the render call — DotOptions holds spans.
  std::vector<std::uint64_t> visits;
  std::vector<std::uint32_t> layer_nodes;
  if (overlay == "contention") {
    ConcurrentNetwork cnet(net);
    cnet.enable_visit_probe();
    for (std::uint64_t t = 0; t < tokens; ++t) {
      (void)cnet.traverse(static_cast<Wire>(t % net.width()));
    }
    visits = cnet.gate_visits();
    opts.overlay = DotOverlay::kContention;
    opts.gate_visits = visits;
    std::fprintf(stderr, "overlay: %llu tokens traced, hottest gate %llu\n",
                 static_cast<unsigned long long>(tokens),
                 static_cast<unsigned long long>(
                     visits.empty()
                         ? 0
                         : *std::max_element(visits.begin(), visits.end())));
  } else if (overlay == "placement") {
    const ExecutionPlan plan = compile_plan(net);
    const topo::PlacementPlan placement =
        topo::plan_placement(plan, rt.topology());
    layer_nodes = placement.layer_nodes;
    opts.overlay = DotOverlay::kPlacement;
    opts.layer_nodes = layer_nodes;
    std::fprintf(stderr, "overlay: %s\n", placement.rationale.c_str());
  } else if (overlay != "none") {
    std::fprintf(stderr,
                 "unknown overlay '%s' (valid: none|contention|placement)\n",
                 overlay.c_str());
    return 2;
  }
  std::fputs(to_dot(net, opts).c_str(), stdout);
  return 0;
}

int cmd_optimize(Runtime& rt, const Network& net, int argc, char** argv) {
  PassLevel passes = default_pass_level();
  PassOptions opts;
  bool stats = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stats") {
      stats = true;
    } else if (arg.rfind("--passes=", 0) == 0) {
      const auto parsed = parse_pass_level(arg.substr(9));
      if (!parsed) {
        std::fprintf(stderr, "unknown pass level '%s'\n", arg.c_str() + 9);
        return 2;
      }
      passes = *parsed;
    } else if (arg == "--semantics=comparator") {
      opts.semantics = Semantics::kComparator;
    } else if (arg == "--semantics=balancer") {
      opts.semantics = Semantics::kBalancer;
    } else {
      std::fprintf(stderr, "unknown optimize option %s\n", arg.c_str());
      return 2;
    }
  }
  const PipelineResult result = optimize_network(net, passes, opts);
  std::fprintf(stderr, "pipeline %s (%s semantics)\n%s", to_string(passes),
               to_string(opts.semantics), result.summary().c_str());
  std::fprintf(stderr,
               "total: gates %zu -> %zu, depth %u -> %u, hash %016llx\n",
               net.gate_count(), result.network.gate_count(), net.depth(),
               result.network.depth(),
               static_cast<unsigned long long>(
                   structural_hash(result.network)));
  if (stats) {
    // Route the same (network, pipeline) pair through the runtime's plan
    // cache so the report reflects this invocation, then print the unified
    // module-cache + plan-cache section.
    (void)rt.compiled(net, passes, opts);
    print_cache_stats(rt);
  }
  std::fputs(serialize_network(result.network).c_str(), stdout);
  return 0;
}

// Drives the sharded counting service (src/service/) and verifies the
// counter afterwards. The pinned report lines are "step property:" and
// "linearity:" (cli_test locks them); exit is non-zero when either fails.
// Async mode (the default) pushes increments through the TokenFrontEnd so
// the service.enqueued/drained/batches metrics are exercised; --sync calls
// next_on() inline under the chosen schedule instead. Both end with one
// rebalance() so the elasticity path and its counter run too.
int cmd_saturate(Runtime& rt, int argc, char** argv) {
  ShardManager::Options shard_opts;
  shard_opts.shards = 2;
  shard_opts.visit_probe = true;  // feed rebalance() measured fractions
  SaturationOptions sat;
  sat.threads = 4;
  sat.tokens_per_thread = 2000;
  sat.async = true;
  bool factors_given = false;
  std::string profile_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shards" && i + 1 < argc) {
      shard_opts.shards = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--threads" && i + 1 < argc) {
      sat.threads = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--tokens" && i + 1 < argc) {
      sat.tokens_per_thread = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--factors" && i + 1 < argc) {
      shard_opts.factors = parse_factors(argv[++i]);
      factors_given = true;
    } else if (arg.rfind("--profile=", 0) == 0) {
      profile_path = arg.substr(10);
    } else if (arg == "--profile" && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (arg == "--schedule" && i + 1 < argc) {
      const auto kind = parse_schedule(argv[++i]);
      if (!kind) {
        std::fprintf(stderr, "unknown schedule '%s'\n", argv[i]);
        return 2;
      }
      sat.schedule.kind = *kind;
    } else if (arg == "--seed" && i + 1 < argc) {
      sat.schedule.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--sync") {
      sat.async = false;
    } else {
      std::fprintf(stderr, "unknown saturate option %s\n", arg.c_str());
      return 2;
    }
  }
  if (shard_opts.shards == 0 || sat.threads == 0) {
    std::fprintf(stderr, "saturate needs --shards >= 1 and --threads >= 1\n");
    return 2;
  }

  if (!profile_path.empty()) {
    // Let the profile-backed planner pick the shard factorization at the
    // same width (shards are K networks; explicit --factors wins).
    if (factors_given) {
      std::fprintf(stderr,
                   "profile: --factors given explicitly; ignoring %s\n",
                   profile_path.c_str());
    } else if (const auto profile = load_profile_or_warn(profile_path)) {
      std::size_t width = 1;
      for (const std::size_t f : shard_opts.factors) width *= f;
      PlanRequirements req;
      req.width = width;
      req.concurrency = static_cast<double>(sat.threads);
      req.profile = &*profile;
      for (const Plan& plan : plan_candidates(req)) {
        if (plan.kind != NetworkKind::kK) continue;
        shard_opts.factors = plan.factors;
        std::printf("profile: shard factors %s chosen by %s planner\n",
                    format_factors(plan.factors).c_str(),
                    plan.from_profile ? "measured-profile" : "static");
        break;
      }
    }
  }

  ShardManager service(shard_opts, rt);
  const SaturationResult res = run_saturation(service, sat, rt);
  std::printf(
      "saturate: shards %zu (active %zu) width %zu threads %zu tokens "
      "%llu schedule %s mode %s\n",
      service.shard_count(), service.active_shards(), service.shard_width(),
      sat.threads,
      static_cast<unsigned long long>(res.tokens),
      to_string(sat.schedule.kind), sat.async ? "async" : "sync");

  bool step_ok = true;
  for (std::size_t j = 0; j < service.active_shards(); ++j) {
    step_ok = step_ok && has_step_property(service.shard_output_counts(j));
  }
  std::printf("step property: %s\n", step_ok ? "PASS" : "FAIL");
  std::printf("linearity: %s%s%s\n", res.linearity.ok ? "PASS" : "FAIL",
              res.linearity.ok ? "" : "  ",
              res.linearity.ok ? "" : res.linearity.detail.c_str());
  std::printf("throughput: %.0f tokens/s\n", res.tokens_per_second());

  const ShardManager::RebalanceDecision d = service.rebalance();
  std::printf("rebalance: active %zu -> %zu (epoch %llu tokens)\n",
              d.active_before, d.active_after,
              static_cast<unsigned long long>(d.epoch_tokens));
  return (step_ok && res.linearity.ok) ? 0 : 1;
}

// Runs the autotuning sweep (tune/experiment.h) and writes the machine
// profile. The report compares, per swept width, the measured-best cell
// against the static cost model's choice; --gate turns "measured beats
// static on >= 1 width" into the exit code. On a single-core host the
// gate is informational: every measurement is time-sliced noise there,
// so a miss proves nothing.
int cmd_tune(int argc, char** argv) {
  bool quick = false;
  bool gate = false;
  std::string path = "scnet_profile.json";
  std::vector<std::size_t> widths;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--gate") {
      gate = true;
    } else if (arg.rfind("--profile=", 0) == 0) {
      path = arg.substr(10);
    } else if (arg == "--profile" && i + 1 < argc) {
      path = argv[++i];
    } else if (arg == "--widths" && i + 1 < argc) {
      widths = parse_size_list(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown tune option %s\n", arg.c_str());
      return 2;
    }
  }
  if (widths.empty()) {
    widths = quick ? std::vector<std::size_t>{16, 24}
                   : std::vector<std::size_t>{16, 24, 32, 64};
  }
  for (const std::size_t w : widths) {
    if (w < 2) {
      std::fprintf(stderr, "tune widths must be >= 2\n");
      return 2;
    }
  }

  // Re-tuning refreshes an existing profile for this machine (append
  // keeps the faster measurement per sweep point); a stale or foreign
  // file is replaced outright.
  tune::MachineProfile profile;
  if (auto loaded = tune::MachineProfile::load(path);
      loaded && loaded->matches_host()) {
    profile = std::move(*loaded);
  }

  tune::ExperimentManager manager(tune::default_sweep(widths, quick));
  const std::size_t total = manager.cells().size();
  std::fprintf(stderr, "tune: %s, %zu cells\n",
               manager.config().name.c_str(), total);
  std::size_t done = 0;
  manager.set_progress([&](const tune::CellResult& r) {
    ++done;
    std::fprintf(stderr, "  [%zu/%zu] %s: %s\n", done, total,
                 r.cell.label().c_str(),
                 r.ok ? (r.timed_out ? "ok (budget cut)" : "ok")
                      : r.error.c_str());
  });
  const std::vector<tune::CellResult> results = manager.run();
  const std::size_t stored = tune::append_results(profile, results);
  if (!profile.save(path)) {
    std::fprintf(stderr, "tune: failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("tune: measured %zu cells, stored %zu, profile %s\n",
              results.size(), stored, path.c_str());
  std::printf("fingerprint: %s\n", profile.fingerprint().c_str());

  // Per-width verdict. "Static choice" is the static planner's first
  // candidate that the sweep actually measured (same kind, factors AND
  // backend), so both sides of the comparison are measurements.
  bool any_beat = false;
  for (const std::size_t width : widths) {
    const tune::ProfileCell* best = nullptr;
    for (const tune::ProfileCell& c : profile.cells()) {
      if (c.width != width) continue;
      if (best == nullptr || c.vectors_per_sec > best->vectors_per_sec) {
        best = &c;
      }
    }
    if (best == nullptr) {
      std::printf("width %zu: no measured cells\n", width);
      continue;
    }
    PlanRequirements req;
    req.width = width;
    req.batch_lanes = best->lanes;
    const tune::ProfileCell* static_cell = nullptr;
    for (const Plan& plan : plan_candidates(req)) {  // static order
      for (const tune::ProfileCell& c : profile.cells()) {
        if (c.kind != plan.kind || c.factors != plan.factors ||
            c.backend != plan.recommended_backend) {
          continue;
        }
        if (static_cell == nullptr ||
            c.vectors_per_sec > static_cell->vectors_per_sec) {
          static_cell = &c;
        }
      }
      if (static_cell != nullptr) break;
    }
    if (static_cell == nullptr) {
      std::printf("width %zu: best %s %.0f vectors/s (static choice "
                  "unmeasured)\n",
                  width, best->label().c_str(), best->vectors_per_sec);
      continue;
    }
    const double speedup =
        static_cell->vectors_per_sec > 0
            ? best->vectors_per_sec / static_cell->vectors_per_sec
            : 0.0;
    std::printf("width %zu: best %s %.0f vectors/s | static %s %.0f "
                "vectors/s | speedup %.2fx\n",
                width, best->label().c_str(), best->vectors_per_sec,
                static_cell->label().c_str(),
                static_cell->vectors_per_sec, speedup);
    if (best->vectors_per_sec > static_cell->vectors_per_sec) {
      any_beat = true;
    }
  }

  if (!gate) return 0;
  if (machine_caps().threads <= 1) {
    std::printf("gate: informational on single-core host (measured beats "
                "static: %s)\n",
                any_beat ? "yes" : "no");
    return 0;
  }
  std::printf("gate: %s\n",
              any_beat ? "PASS (profile beats static policy on >=1 width)"
                       : "FAIL (static policy matched measured best on "
                         "every width)");
  return any_beat ? 0 : 1;
}

Network read_network_or_die() {
  std::stringstream buf;
  buf << std::cin.rdbuf();
  ParseResult r = parse_network(buf.str());
  if (!r.network) {
    std::fprintf(stderr, "parse error: %s\n", r.error.c_str());
    std::exit(2);
  }
  return std::move(*r.network);
}

// The pinned --metrics report: every registry entry, one per line, sorted
// by name (the registry snapshot is name-sorted). Histograms print their
// count/mean and bucket-resolution quantiles instead of a raw value.
void print_metrics(Runtime& rt) {
  const obs::MetricsSnapshot snap = metrics_snapshot(rt);
  std::fprintf(stderr, "metrics:\n");
  for (const obs::MetricSample& s : snap) {
    if (s.kind == obs::MetricKind::kHistogram) {
      std::fprintf(stderr,
                   "  %s = count %llu mean %.1f p50<=%llu p99<=%llu\n",
                   s.name.c_str(),
                   static_cast<unsigned long long>(s.histogram.count),
                   s.histogram.mean(),
                   static_cast<unsigned long long>(
                       s.histogram.quantile_upper_bound(0.5)),
                   static_cast<unsigned long long>(
                       s.histogram.quantile_upper_bound(0.99)));
    } else {
      std::fprintf(stderr, "  %s = %llu\n", s.name.c_str(),
                   static_cast<unsigned long long>(s.value));
    }
  }
}

int dispatch(Runtime& rt, int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "build") return cmd_build(rt, argc, argv);
  if (cmd == "saturate") return cmd_saturate(rt, argc, argv);
  if (cmd == "tune") return cmd_tune(argc, argv);

  const Network net = read_network_or_die();
  if (cmd == "info") {
    std::printf("%s\n", summarize(net).c_str());
    return 0;
  }
  if (cmd == "dot") {
    std::fputs(to_dot(net).c_str(), stdout);
    return 0;
  }
  if (cmd == "ascii") {
    std::fputs(to_ascii(net).c_str(), stdout);
    return 0;
  }
  if (cmd == "svg") {
    std::fputs(to_svg(net).c_str(), stdout);
    return 0;
  }
  if (cmd == "analyze") {
    std::printf("%s\n", summarize(net).c_str());
    std::printf("occupancy: %.3f\n", occupancy(net));
    const auto util = wire_utilization(net);
    std::printf("wire load min/mean/max: %zu/%.2f/%zu\n", util.min_gates,
                util.mean_gates, util.max_gates);
    std::printf("layers (gates@maxwidth):");
    for (const auto& p : layer_profiles(net)) {
      std::printf(" %zu@%zu", p.gates, p.max_gate_width);
    }
    std::printf("\n");
    const auto est = estimate_contention(net);
    std::printf("contention: hops/token %.2f, hottest gate %.4f\n",
                est.hops_per_token, est.hottest_gate_fraction);
    return 0;
  }
  if (cmd == "verify") {
    const CountingVerdict cv = verify_counting(net);
    std::printf("counting: %s", cv.ok ? "PASS" : "FAIL");
    if (!cv.ok) {
      std::printf("  witness [%s] -> [%s]",
                  format_sequence(cv.counterexample).c_str(),
                  format_sequence(cv.bad_output).c_str());
    }
    std::printf("\n");
    if (net.width() <= 22) {
      const SortingVerdict sv = verify_sorting_exhaustive(net);
      std::printf("sorting (0-1 exhaustive): %s\n", sv.ok ? "PASS" : "FAIL");
      return (cv.ok && sv.ok) ? 0 : 1;
    }
    const SortingVerdict sv = verify_sorting_sampled(net, 500);
    std::printf("sorting (sampled x500): %s\n", sv.ok ? "PASS" : "FAIL");
    return (cv.ok && sv.ok) ? 0 : 1;
  }
  if (cmd == "count" && argc >= 3) {
    const auto in = parse_counts(argv[2]);
    if (in.size() != net.width()) {
      std::fprintf(stderr, "need %zu counts\n", net.width());
      return 2;
    }
    std::printf("%s\n", format_sequence(output_counts(net, in)).c_str());
    return 0;
  }
  if (cmd == "sort" && argc >= 3) return cmd_sort(rt, net, argc, argv);
  if (cmd == "export") return cmd_export(rt, net, argc, argv);
  if (cmd == "optimize") return cmd_optimize(rt, net, argc, argv);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the global observability options before command dispatch so each
  // command's own option parsing (which rejects unknown --flags) never
  // sees them.
  bool metrics = false;
  bool isolated = false;
  std::string trace_path;
  std::vector<char*> filtered;
  filtered.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
      continue;
    }
    if (std::strcmp(argv[i], "--isolated") == 0) {
      isolated = true;
      continue;
    }
    if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--trace requires an output file\n");
        return 2;
      }
      trace_path = argv[++i];
      continue;
    }
    filtered.push_back(argv[i]);
  }

  // --isolated runs the command against a fresh private Runtime: its own
  // module/plan caches and metric namespace, so --stats/--metrics report
  // exactly this invocation no matter what else the process did.
  std::optional<scn::Runtime> private_runtime;
  if (isolated) private_runtime.emplace();
  scn::Runtime& rt =
      private_runtime ? *private_runtime : scn::Runtime::shared();

  std::optional<scn::TraceSession> session;
  if (!trace_path.empty()) session.emplace(trace_path);
  int rc = dispatch(rt, static_cast<int>(filtered.size()), filtered.data());
  if (session) {
    // Finish explicitly (before the metrics report) so a failed write —
    // bad path, full disk — is reported and fails the run.
    if (session->finish()) {
      std::fprintf(stderr, "trace: wrote %s (%zu events)\n",
                   trace_path.c_str(),
                   scn::obs::Tracer::shared().event_count());
    } else {
      std::fprintf(stderr, "trace: failed to write %s\n", trace_path.c_str());
      if (rc == 0) rc = 1;
    }
  }
  if (metrics) print_metrics(rt);
  return rc;
}
