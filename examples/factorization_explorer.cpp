// Explore the network *family* for a width: one network per factorization
// (paper §1), showing the depth / balancer-width / gate-cost trade-off for
// both the K and L constructions.
//
//   ./factorization_explorer [width]      (default 144)
#include <cstdio>
#include <cstdlib>

#include "core/factorization.h"
#include "core/family.h"

int main(int argc, char** argv) {
  using namespace scn;
  const std::size_t w = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 144;
  if (w < 4) {
    std::fprintf(stderr, "width must be >= 4\n");
    return 1;
  }
  std::printf("family of counting/sorting networks of width %zu\n", w);
  std::printf("prime factorization: %s\n\n",
              format_factors(prime_factorization(w)).c_str());

  for (const NetworkKind kind : {NetworkKind::kK, NetworkKind::kL}) {
    std::printf("%s construction (%s):\n", to_string(kind),
                kind == NetworkKind::kK
                    ? "balancers up to max(p_i*p_j), depth 1.5n^2-3.5n+2"
                    : "balancers up to max(p_i), depth <= 9.5n^2-12.5n+3");
    std::printf("  %-20s %3s %7s %9s %8s %10s\n", "factorization", "n",
                "depth", "maxgate", "gates", "endpoints");
    for (const auto& m : enumerate_family(w, kind)) {
      std::printf("  %-20s %3zu %7u %9u %8zu %10zu\n",
                  format_factors(m.factors).c_str(), m.factors.size(),
                  m.network.depth(), m.network.max_gate_width(),
                  m.network.gate_count(), m.network.wire_endpoint_count());
    }
    std::printf("\n");
  }
  std::printf(
      "reading the table: pick a row whose max gate width matches the\n"
      "hardware (e.g. how many requests one shared-memory balancer word\n"
      "can absorb); depth is the latency every token/value pays.\n");
  return 0;
}
