// Quickstart: build a counting network for an arbitrary width, count
// tokens with it, then use the very same network to sort.
//
//   ./quickstart [width]        (default 60)
#include <cstdio>
#include <cstdlib>
#include <random>

#include "core/factorization.h"
#include "core/l_network.h"
#include "net/export.h"
#include "seq/generators.h"
#include "sim/comparator_sim.h"
#include "sim/count_sim.h"
#include "verify/checkers.h"

int main(int argc, char** argv) {
  using namespace scn;
  const std::size_t w = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;
  if (w < 4) {
    std::fprintf(stderr, "width must be >= 4\n");
    return 1;
  }

  // 1. Factor the width and build the L network: balancers never wider
  //    than the largest factor, depth O(log^2 w) with small constants.
  const std::vector<std::size_t> factors = balanced_factorization(w, 8);
  const Network net = make_l_network(factors);
  std::printf("L(%s): %s\n\n", format_factors(factors).c_str(),
              summarize(net).c_str());

  // 2. Counting mode: throw tokens at random wires; the outputs always
  //    form the step sequence (uniform, excess on the top wires).
  std::mt19937_64 rng(42);
  const auto tokens = random_count_vector(rng, w, static_cast<Count>(2 * w + 3));
  const auto counted = output_counts(net, tokens);
  std::printf("counting %lld tokens:\n  in  = %s\n  out = %s\n  step = %s\n\n",
              static_cast<long long>(sequence_sum(tokens)),
              format_sequence(tokens).c_str(),
              format_sequence(counted).c_str(),
              is_exact_step_output(counted) ? "yes" : "NO");

  // 3. Sorting mode: the same topology with comparators sorts values
  //    (descending along the logical outputs; ask for ascending if wanted).
  const auto values = random_permutation(rng, w);
  const auto sorted = network_sort_ascending(net, values);
  std::printf("sorting a permutation of 0..%zu:\n  in  = %s\n  out = %s\n",
              w - 1, format_sequence(values).c_str(),
              format_sequence(sorted).c_str());
  bool ok = true;
  for (std::size_t i = 0; i < w; ++i) ok &= sorted[i] == static_cast<Count>(i);
  std::printf("  sorted ascending = %s\n", ok ? "yes" : "NO");
  return ok && is_exact_step_output(counted) ? 0 : 1;
}
