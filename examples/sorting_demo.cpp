// Sort real records with a comparator network built from the paper's
// construction, cross-checked against std::sort, plus a comparison of the
// available sorting-network baselines.
//
//   ./sorting_demo [width]      (default 120)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "baseline/batcher.h"
#include "core/factorization.h"
#include "core/k_network.h"
#include "seq/generators.h"
#include "sim/comparator_sim.h"

namespace {

struct Order {
  scn::Count priority;
  std::string id;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace scn;
  const std::size_t w = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 120;
  if (w < 4) {
    std::fprintf(stderr, "width must be >= 4\n");
    return 1;
  }

  const auto factors = balanced_factorization(w, 6);
  const Network net = make_k_network(factors);
  const Network batcher = make_batcher_network(w);
  std::printf("K(%s): depth %u, %zu gates | batcher: depth %u, %zu gates\n\n",
              format_factors(factors).c_str(), net.depth(), net.gate_count(),
              batcher.depth(), batcher.gate_count());

  // Build a batch of "orders" with random priorities (ties allowed) and
  // dispatch the w most urgent in priority order.
  std::mt19937_64 rng(7);
  const auto priorities = random_values(rng, w, 0, static_cast<Count>(w / 2));
  std::vector<Order> orders;
  for (std::size_t i = 0; i < w; ++i) {
    orders.push_back({priorities[i], "order-" + std::to_string(i)});
  }

  const auto by_priority = [](const Order& a, const Order& b) {
    return a.priority > b.priority;
  };
  const auto sorted = comparator_output<Order>(net, orders, by_priority);

  // Cross-check against std::sort on the keys.
  std::vector<Count> keys = priorities;
  std::sort(keys.begin(), keys.end(), std::greater<>());
  bool ok = true;
  for (std::size_t i = 0; i < w; ++i) ok &= sorted[i].priority == keys[i];
  std::printf("network order matches std::sort on every key: %s\n",
              ok ? "yes" : "NO");

  std::printf("top 5 dispatched: ");
  for (std::size_t i = 0; i < 5 && i < sorted.size(); ++i) {
    std::printf("%s(p%lld) ", sorted[i].id.c_str(),
                static_cast<long long>(sorted[i].priority));
  }
  std::printf("\n\n");

  // A quick single-core timing comparison (networks do more comparisons;
  // their payoff is depth == parallel steps, shown alongside).
  const auto vals = random_permutation(rng, w);
  const auto time_it = [&](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < 2000; ++rep) fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
               .count() /
           2000;
  };
  const double t_net = time_it([&] {
    auto out = comparator_output_counts(net, vals);
    (void)out;
  });
  const double t_bat = time_it([&] {
    auto out = comparator_output_counts(batcher, vals);
    (void)out;
  });
  const double t_std = time_it([&] {
    auto copy = vals;
    std::sort(copy.begin(), copy.end(), std::greater<>());
  });
  std::printf("single-core time/sort:  K %.1fus (depth %u)   batcher %.1fus "
              "(depth %u)   std::sort %.1fus (sequential)\n",
              t_net * 1e6, net.depth(), t_bat * 1e6, batcher.depth(),
              t_std * 1e6);
  return ok ? 0 : 1;
}
