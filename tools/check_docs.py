#!/usr/bin/env python3
"""Doc lint: repository paths and relative links in *.md must resolve.

Checks every Markdown file in the repository (skipping build trees) for:

  1. repo-relative path references — any token that looks like
     ``src/...``, ``docs/...``, ``bench/...``, ``tests/...``,
     ``tools/...`` or ``examples/...`` must name something that exists.
     Brace sets expand (``core/module.{h,cpp}``), ``*`` globs
     (``core/family.*``, ``bench/bench_*``) must match at least one
     file, and bare directory references (``src/obs/``) must be
     directories.
  2. relative Markdown links — ``[text](other.md)`` and
     ``[text](other.md#anchor)`` must point at an existing file.
  3. docs-index completeness — every ``docs/*.md`` must be referenced
     from the README's documentation table, so a new document cannot
     land without an entry point.
  4. architecture-index completeness — every ``src/<subsystem>/``
     directory must be mentioned in the README (the Architecture
     block), so a new subsystem cannot land undocumented.
  5. CLI-flag staleness — inside fenced code blocks, ``--passes=X`` /
     ``--engine=X`` values must be levels the CLI actually accepts,
     and a spelled-out value set (``--passes={a|b|...}``) must EQUAL
     the CLI's set. The truth is parsed from the usage text in
     ``examples/scnet_cli.cpp`` (a static read, so the doc-lint CI job
     needs no build); ``--profile`` references require the flag to
     exist there too.

Exit status 0 when everything resolves, 1 with one line per dangling
reference otherwise. Run from anywhere:

    python3 tools/check_docs.py
"""

from __future__ import annotations

import glob
import itertools
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Directories whose *.md we lint (repo root + these, recursively).
DOC_DIRS = ["docs", "tools", "bench", "tests", "examples", "src", ".github"]
SKIP_DIR_PARTS = {"build", "build-obs-off", ".git", "related"}

# A path reference: a known top-level dir, then path characters. Brace
# sets ({h,cpp}) are matched as a unit; a trailing '/' marks a directory.
PATH_RE = re.compile(
    r"\b(?:src|docs|bench|tests|tools|examples)/"
    r"(?:[\w.\-*]+(?:\{[\w.,]+\})?/?)+"
)

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)\s]*)?\)")

# Benchmarks and tests are referenced by target name ("bench_depth_k"),
# and prose sometimes names a path that is a *concept* rather than a
# file; list deliberate exceptions here.
ALLOWED_MISSING: set[str] = set()


def md_files() -> list[Path]:
    files = sorted(REPO.glob("*.md"))
    for d in DOC_DIRS:
        files.extend(sorted((REPO / d).rglob("*.md")))
    return [
        f
        for f in files
        if not SKIP_DIR_PARTS.intersection(f.relative_to(REPO).parts)
    ]


def expand_braces(ref: str) -> list[str]:
    """core/module.{h,cpp} -> [core/module.h, core/module.cpp]."""
    parts = re.split(r"(\{[\w.,]+\})", ref)
    options = [
        p[1:-1].split(",") if p.startswith("{") else [p] for p in parts
    ]
    return ["".join(combo) for combo in itertools.product(*options)]


def resolve(ref: str) -> bool:
    """True when the repo-relative reference names something real."""
    for candidate in expand_braces(ref):
        want_dir = candidate.endswith("/")
        candidate = candidate.rstrip("/")
        if "*" in candidate:
            if not glob.glob(str(REPO / candidate)):
                return False
            continue
        path = REPO / candidate
        # "src/core/family" (no extension) abbreviates family.h/.cpp;
        # accept any extension-completed match.
        if want_dir:
            if not path.is_dir():
                return False
        elif not path.exists() and not glob.glob(str(path) + ".*"):
            return False
    return True


def strip_punctuation(ref: str) -> str:
    return ref.rstrip(".,;:")


def check_docs_index(errors: list[str]) -> None:
    """Every docs/*.md must be mentioned in README.md (the docs table)."""
    readme = REPO / "README.md"
    text = readme.read_text(encoding="utf-8")
    for doc in sorted((REPO / "docs").glob("*.md")):
        ref = doc.relative_to(REPO).as_posix()
        if ref not in text:
            errors.append(
                f"README.md: docs index is missing an entry for {ref!r}"
            )


def check_architecture_index(errors: list[str]) -> None:
    """Every src/<subsystem>/ directory must be mentioned in README.md."""
    text = (REPO / "README.md").read_text(encoding="utf-8")
    for sub in sorted((REPO / "src").iterdir()):
        if not sub.is_dir():
            continue
        if f"{sub.name}/" not in text:
            errors.append(
                "README.md: Architecture block is missing an entry for "
                f"'src/{sub.name}/'"
            )


def cli_flag_sets() -> tuple[dict[str, set[str]], str]:
    """Allowed value sets for --passes / --engine, parsed from the CLI's
    usage text. Adjacent string literals are joined first so a brace set
    split across source lines still parses as one unit."""
    source = (REPO / "examples" / "scnet_cli.cpp").read_text(
        encoding="utf-8"
    )
    joined = re.sub(r'"\s*"', "", source)
    sets: dict[str, set[str]] = {}
    for flag in ("passes", "engine"):
        match = re.search(r"--" + flag + r"=\{([\w|]+)\}", joined)
        if match:
            sets[flag] = set(match.group(1).split("|"))
    return sets, joined


CLI_FLAG_RE = re.compile(r"--(passes|engine)=(\{[^}\s]*\}|[\w-]+)")


def check_cli_flags(
    md: Path,
    text: str,
    sets: dict[str, set[str]],
    usage: str,
    errors: list[str],
) -> None:
    """Fenced-code CLI flag references must match what the CLI accepts."""
    rel_md = md.relative_to(REPO)
    fenced = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if not fenced:
            continue
        if "--profile" in line and "--profile" not in usage:
            errors.append(
                f"{rel_md}:{lineno}: '--profile' is not a scnet_cli flag"
            )
        for match in CLI_FLAG_RE.finditer(line):
            flag, value = match.group(1), match.group(2)
            allowed = sets.get(flag)
            if allowed is None:
                errors.append(
                    f"{rel_md}:{lineno}: no usage value set for --{flag} "
                    "in examples/scnet_cli.cpp"
                )
            elif value.startswith("{"):
                listed = set(value[1:-1].split("|"))
                if listed != allowed:
                    errors.append(
                        f"{rel_md}:{lineno}: stale --{flag} value set "
                        f"{sorted(listed)} (CLI accepts {sorted(allowed)})"
                    )
            elif value not in allowed:
                errors.append(
                    f"{rel_md}:{lineno}: '--{flag}={value}' is not a CLI "
                    f"value (accepts {sorted(allowed)})"
                )


def main() -> int:
    errors: list[str] = []
    check_docs_index(errors)
    check_architecture_index(errors)
    flag_sets, cli_usage = cli_flag_sets()
    for md in md_files():
        rel_md = md.relative_to(REPO)
        text = md.read_text(encoding="utf-8")
        check_cli_flags(md, text, flag_sets, cli_usage, errors)
        for lineno, line in enumerate(text.splitlines(), start=1):
            for match in PATH_RE.finditer(line):
                ref = strip_punctuation(match.group(0))
                if ref in ALLOWED_MISSING:
                    continue
                if not resolve(ref):
                    errors.append(f"{rel_md}:{lineno}: dangling path {ref!r}")
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if "://" in target or target.startswith("mailto:"):
                    continue
                if not (md.parent / target).exists():
                    errors.append(
                        f"{rel_md}:{lineno}: dangling link {target!r}"
                    )
    for err in errors:
        print(err)
    if errors:
        print(f"check_docs: {len(errors)} dangling reference(s)")
        return 1
    print(f"check_docs: OK ({len(md_files())} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
