// Structural anatomy tables: per-layer profiles, wire utilization and
// occupancy for the main constructions at width 64 — the data a hardware
// or shared-memory deployment sizes against — plus a construction-
// throughput section (builds/sec through the module cache vs the
// imperative path; bench_construct has the full sweep and the CI gate).
#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>

#include "baseline/batcher.h"
#include "baseline/bitonic.h"
#include "bench_common.h"
#include "core/k_network.h"
#include "core/l_network.h"
#include "core/module.h"
#include "net/analyze.h"

namespace {

using namespace scn;

void print_profile(const char* name, const Network& net) {
  const auto util = wire_utilization(net);
  std::printf("%-12s depth=%2u gates=%4zu occupancy=%.2f wire-load "
              "min/mean/max = %zu/%.1f/%zu\n",
              name, net.depth(), net.gate_count(), occupancy(net),
              util.min_gates, util.mean_gates, util.max_gates);
  std::printf("  layer profile (gates@maxwidth): ");
  for (const auto& p : layer_profiles(net)) {
    std::printf("%zu@%zu ", p.gates, p.max_gate_width);
  }
  std::printf("\n");
  const auto path = critical_path(net);
  std::printf("  critical path gate widths: ");
  for (const std::size_t gi : path) {
    std::printf("%u ", net.gates()[gi].width);
  }
  std::printf("\n\n");
}

void print_table() {
  bench::print_header("Structural anatomy at width 64",
                      "layer-by-layer gate counts and widths per "
                      "construction");
  print_profile("K(8x8)", make_k_network({8, 8}));
  print_profile("K(4x4x4)", make_k_network({4, 4, 4}));
  print_profile("K(2^6)", make_k_network({2, 2, 2, 2, 2, 2}));
  print_profile("L(4x4x4)", make_l_network({4, 4, 4}));
  print_profile("bitonic64", make_bitonic_network(6));
  print_profile("batcher64", make_batcher_network(64));
}

double builds_per_second(const std::function<Network()>& build) {
  // Time enough builds to clear clock resolution even for tiny widths.
  constexpr int kReps = 50;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) benchmark::DoNotOptimize(build());
  const auto t1 = std::chrono::steady_clock::now();
  return kReps / std::chrono::duration<double>(t1 - t0).count();
}

void print_construction_throughput() {
  bench::print_header("Construction throughput at width 64",
                      "builds/sec: module-cache stamping vs the imperative "
                      "path (SCNET_MODULE_CACHE=0)");
  const struct {
    const char* name;
    std::function<Network()> build;
  } rows[] = {
      {"K(4x4x4)", [] { return make_k_network({4, 4, 4}); }},
      {"K(2^6)", [] { return make_k_network({2, 2, 2, 2, 2, 2}); }},
      {"L(4x4x4)", [] { return make_l_network({4, 4, 4}); }},
  };
  std::printf("%-12s %14s %14s %8s\n", "network", "stamped/s", "imperative/s",
              "speedup");
  bench::print_row_rule();
  for (const auto& row : rows) {
    double stamped = 0, imperative = 0;
    {
      ScopedModuleCacheToggle on(true);
      (void)row.build();  // warm the shared cache
      stamped = builds_per_second(row.build);
    }
    {
      ScopedModuleCacheToggle off(false);
      imperative = builds_per_second(row.build);
    }
    std::printf("%-12s %14.0f %14.0f %7.1fx\n", row.name, stamped, imperative,
                stamped / imperative);
  }
  std::printf("\n");
}

void BM_Analyze(benchmark::State& state) {
  const Network net = make_l_network({4, 4, 4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer_profiles(net).size());
    benchmark::DoNotOptimize(critical_path(net).size());
  }
}
BENCHMARK(BM_Analyze);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  print_construction_throughput();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
