// Structural anatomy tables: per-layer profiles, wire utilization and
// occupancy for the main constructions at width 64 — the data a hardware
// or shared-memory deployment sizes against.
#include <benchmark/benchmark.h>

#include "baseline/batcher.h"
#include "baseline/bitonic.h"
#include "bench_common.h"
#include "core/k_network.h"
#include "core/l_network.h"
#include "net/analyze.h"

namespace {

using namespace scn;

void print_profile(const char* name, const Network& net) {
  const auto util = wire_utilization(net);
  std::printf("%-12s depth=%2u gates=%4zu occupancy=%.2f wire-load "
              "min/mean/max = %zu/%.1f/%zu\n",
              name, net.depth(), net.gate_count(), occupancy(net),
              util.min_gates, util.mean_gates, util.max_gates);
  std::printf("  layer profile (gates@maxwidth): ");
  for (const auto& p : layer_profiles(net)) {
    std::printf("%zu@%zu ", p.gates, p.max_gate_width);
  }
  std::printf("\n");
  const auto path = critical_path(net);
  std::printf("  critical path gate widths: ");
  for (const std::size_t gi : path) {
    std::printf("%u ", net.gates()[gi].width);
  }
  std::printf("\n\n");
}

void print_table() {
  bench::print_header("Structural anatomy at width 64",
                      "layer-by-layer gate counts and widths per "
                      "construction");
  print_profile("K(8x8)", make_k_network({8, 8}));
  print_profile("K(4x4x4)", make_k_network({4, 4, 4}));
  print_profile("K(2^6)", make_k_network({2, 2, 2, 2, 2, 2}));
  print_profile("L(4x4x4)", make_l_network({4, 4, 4}));
  print_profile("bitonic64", make_bitonic_network(6));
  print_profile("batcher64", make_batcher_network(64));
}

void BM_Analyze(benchmark::State& state) {
  const Network net = make_l_network({4, 4, 4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer_profiles(net).size());
    benchmark::DoNotOptimize(critical_path(net).size());
  }
}
BENCHMARK(BM_Analyze);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
