// E2 — Proposition 6: depth(K(p0..pn-1)) = 1.5 n^2 - 3.5 n + 2, exactly,
// with balancers within max(p_i p_j). Prints the paper-vs-measured table
// across factorizations, then times K construction.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/factorization.h"
#include "core/k_network.h"

namespace {

using namespace scn;

const std::vector<std::vector<std::size_t>>& cases() {
  static const std::vector<std::vector<std::size_t>> kCases = {
      {2, 2},          {3, 2},          {4, 4},       {8, 8},
      {2, 2, 2},       {4, 3, 2},       {5, 5, 5},    {8, 8, 8},
      {2, 2, 2, 2},    {3, 3, 3, 3},    {5, 4, 3, 2}, {4, 4, 4, 4},
      {2, 2, 2, 2, 2}, {3, 2, 3, 2, 3}, {2, 3, 4, 5, 6},
      {2, 2, 2, 2, 2, 2}, {3, 3, 3, 3, 3, 3}, {2, 2, 3, 3, 4, 4},
      {2, 2, 2, 2, 2, 2, 2},
  };
  return kCases;
}

void print_table() {
  bench::print_header("E2  Proposition 6 (the K network)",
                      "depth(K) = 1.5 n^2 - 3.5 n + 2 exactly; "
                      "balancers <= max(p_i p_j)");
  std::printf("%-22s %5s %8s %8s %8s %10s %6s\n", "factors", "width",
              "formula", "measured", "maxgate", "pairbound", "check");
  bench::print_row_rule();
  bench::JsonReport report("BENCH_depth_k.json", "k_depth_formula");
  bool all_pass = true;
  for (const auto& f : cases()) {
    const Network net = make_k_network(f);
    const std::size_t formula = k_depth_formula(f.size());
    const std::size_t bound = max_pair_product(f);
    const bool ok = net.depth() == formula && net.max_gate_width() <= bound;
    all_pass = all_pass && ok;
    std::printf("%-22s %5zu %8zu %8u %8u %10zu %6s\n",
                format_factors(f).c_str(), net.width(), formula, net.depth(),
                net.max_gate_width(), bound, bench::mark(ok));
    report.begin_row();
    report.kv("factors", format_factors(f));
    report.kv("width", static_cast<std::uint64_t>(net.width()));
    report.kv("formula_depth", static_cast<std::uint64_t>(formula));
    report.kv("measured_depth", static_cast<std::uint64_t>(net.depth()));
    report.kv("max_gate_width",
              static_cast<std::uint64_t>(net.max_gate_width()));
    report.kv("pair_bound", static_cast<std::uint64_t>(bound));
    report.kv("ok", ok);
    report.end_row();
  }
  report.finish(all_pass);
  std::printf("\n");
}

void BM_BuildK(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<std::size_t> factors(n, 2);
  for (auto _ : state) {
    const Network net = make_k_network(factors);
    benchmark::DoNotOptimize(net.gate_count());
  }
  state.counters["width"] = static_cast<double>(std::size_t{1} << n);
  state.counters["depth"] = static_cast<double>(k_depth_formula(n));
}
BENCHMARK(BM_BuildK)->DenseRange(2, 10);

void BM_BuildKWideFactors(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<std::size_t> factors(n, 8);
  for (auto _ : state) {
    const Network net = make_k_network(factors);
    benchmark::DoNotOptimize(net.gate_count());
  }
}
BENCHMARK(BM_BuildKWideFactors)->DenseRange(2, 5);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
