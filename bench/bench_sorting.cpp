// E11 — sorting throughput: evaluating the networks as sorters (K, L,
// Batcher, bitonic) against std::sort. Comparator networks trade work for
// depth; on one core std::sort wins, but the network's layer structure is
// the parallel-time story the constructions target.
//
// The preamble emits BENCH_sorting.json (one row per construction, with a
// sorts-correctly check on a random permutation as the pass flag).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>
#include <random>

#include "baseline/batcher.h"
#include "baseline/bitonic.h"
#include "bench_common.h"
#include "core/k_network.h"
#include "core/l_network.h"
#include "seq/generators.h"
#include "sim/comparator_sim.h"

namespace {

using namespace scn;

void print_table() {
  bench::print_header(
      "E11  Sorting-network inventory at width 64",
      "same values sorted by every construction; depth = parallel time");
  const Network k = make_k_network({4, 4, 4});
  const Network l = make_l_network({4, 4, 4});
  const Network batcher = make_batcher_network(64);
  const Network bitonic = make_bitonic_network(6);
  std::printf("%-12s %7s %7s %9s %9s %6s\n", "network", "depth", "gates",
              "maxgate", "endpoints", "sorts");
  bench::print_row_rule();
  bench::JsonReport report("BENCH_sorting.json", "sorting_inventory");
  bool all_pass = true;
  std::mt19937_64 rng(7);
  for (const auto& [name, net] :
       {std::pair<const char*, const Network*>{"K(4x4x4)", &k},
        {"L(4x4x4)", &l},
        {"batcher64", &batcher},
        {"bitonic64", &bitonic}}) {
    // Comparator networks emit max-first: PASS when a random permutation
    // comes out non-increasing.
    const auto out =
        comparator_output_counts(*net, random_permutation(rng, net->width()));
    const bool sorts =
        std::is_sorted(out.begin(), out.end(), std::greater<>());
    all_pass = all_pass && sorts;
    std::printf("%-12s %7u %7zu %9u %9zu %6s\n", name, net->depth(),
                net->gate_count(), net->max_gate_width(),
                net->wire_endpoint_count(), bench::mark(sorts));
    report.begin_row();
    report.kv("network", name);
    report.kv("width", static_cast<std::uint64_t>(net->width()));
    report.kv("depth", static_cast<std::uint64_t>(net->depth()));
    report.kv("gates", static_cast<std::uint64_t>(net->gate_count()));
    report.kv("max_gate_width",
              static_cast<std::uint64_t>(net->max_gate_width()));
    report.kv("wire_endpoints",
              static_cast<std::uint64_t>(net->wire_endpoint_count()));
    report.kv("sorts", sorts);
    report.end_row();
  }
  report.finish(all_pass);
  std::printf("\n");
}

template <typename MakeNet>
void sort_bench(benchmark::State& state, MakeNet make) {
  const Network net = make();
  std::mt19937_64 rng(7);
  const auto vals = random_permutation(rng, net.width());
  for (auto _ : state) {
    benchmark::DoNotOptimize(comparator_output_counts(net, vals));
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(net.width()));
}

void BM_SortK(benchmark::State& state) {
  sort_bench(state, [] { return make_k_network({4, 4, 4}); });
}
BENCHMARK(BM_SortK);

void BM_SortL(benchmark::State& state) {
  sort_bench(state, [] { return make_l_network({4, 4, 4}); });
}
BENCHMARK(BM_SortL);

void BM_SortBatcher(benchmark::State& state) {
  sort_bench(state, [] { return make_batcher_network(64); });
}
BENCHMARK(BM_SortBatcher);

void BM_SortBitonic(benchmark::State& state) {
  sort_bench(state, [] { return make_bitonic_network(6); });
}
BENCHMARK(BM_SortBitonic);

void BM_StdSort(benchmark::State& state) {
  std::mt19937_64 rng(7);
  const auto vals = random_permutation(rng, 64);
  for (auto _ : state) {
    auto copy = vals;
    std::sort(copy.begin(), copy.end(), std::greater<>());
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_StdSort);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
