// Fetch&Increment implementations head to head: atomic word, mutex,
// counting tree, counting networks of several factorizations. Prints the
// structural inventory, then times ops/sec per implementation and thread
// count. (On a single-core host this measures per-op overhead and
// contention cost, not parallel speedup — see EXPERIMENTS.md.)
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>

#include "bench_common.h"
#include "core/k_network.h"
#include "count/counting_tree.h"
#include "count/fetch_inc.h"

namespace {

using namespace scn;

// NetworkCounter references its Network without owning it: keep the
// benchmark networks alive for the process lifetime.
const Network& k44_network() {
  static const Network net = make_k_network({4, 4});
  return net;
}
const Network& k2222_network() {
  static const Network net = make_k_network({2, 2, 2, 2});
  return net;
}

std::unique_ptr<FetchIncCounter> make_counter(int which) {
  switch (which) {
    case 0:
      return std::make_unique<AtomicCounter>();
    case 1:
      return std::make_unique<MutexCounter>();
    case 2:
      return std::make_unique<TreeCounter>(4);  // width 16
    case 3:
      return std::make_unique<NetworkCounter>(k44_network());
    default:
      return std::make_unique<NetworkCounter>(k2222_network());
  }
}

const char* counter_name(int which) {
  switch (which) {
    case 0:
      return "atomic";
    case 1:
      return "mutex";
    case 2:
      return "tree16";
    case 3:
      return "K(4x4)";
    default:
      return "K(2^4)";
  }
}

void print_table() {
  bench::print_header(
      "Fetch&Increment implementation inventory",
      "counting networks spread one hot word over many balancers; the "
      "tree funnels everything through the root");
  std::printf("%-10s %28s\n", "counter", "structure");
  bench::print_row_rule();
  std::printf("%-10s %28s\n", "atomic", "1 word, every op hits it");
  std::printf("%-10s %28s\n", "mutex", "1 lock");
  const TreeCounter tree(4);
  std::printf("%-10s    width 16, depth %u, root carries 100%% of ops\n",
              "tree16", tree.network().depth());
  const Network k44 = make_k_network({4, 4});
  std::printf("%-10s    width 16, depth %u, hottest gate carries 100%%\n",
              "K(4x4)", k44.depth());
  const Network k2222 = make_k_network({2, 2, 2, 2});
  std::printf("%-10s    width 16, depth %u, hottest gate carries 25%%\n\n",
              "K(2^4)", k2222.depth());
}

void BM_FetchInc(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const auto counter = make_counter(which);
  std::uint64_t total_ops = 0;
  constexpr std::uint64_t kOpsPerThread = 5000;
  for (auto _ : state) {
    std::atomic<bool> go{false};
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
          benchmark::DoNotOptimize(counter->next());
        }
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& th : pool) th.join();
    total_ops += kOpsPerThread * threads;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_ops));
  state.SetLabel(std::string(counter_name(which)) + " x" +
                 std::to_string(threads));
}
BENCHMARK(BM_FetchInc)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {1, 4}})
    ->MinTime(0.05)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
