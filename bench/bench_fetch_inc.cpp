// Fetch&Increment implementations head to head: atomic word, mutex,
// counting tree, counting networks of several factorizations. The preamble
// measures ops/sec and verifies counter linearity per implementation and
// thread count, emitting BENCH_fetch_inc.json (exit non-zero on a
// uniqueness violation); google-benchmark timings follow. (On a
// single-core host this measures per-op overhead and contention cost, not
// parallel speedup — see EXPERIMENTS.md.)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <thread>

#include "bench_common.h"
#include "core/k_network.h"
#include "count/counting_tree.h"
#include "count/fetch_inc.h"

namespace {

using namespace scn;

// NetworkCounter references its Network without owning it: keep the
// benchmark networks alive for the process lifetime.
const Network& k44_network() {
  static const Network net = make_k_network({4, 4});
  return net;
}
const Network& k2222_network() {
  static const Network net = make_k_network({2, 2, 2, 2});
  return net;
}

std::unique_ptr<FetchIncCounter> make_counter(int which) {
  switch (which) {
    case 0:
      return std::make_unique<AtomicCounter>();
    case 1:
      return std::make_unique<MutexCounter>();
    case 2:
      return std::make_unique<TreeCounter>(4);  // width 16
    case 3:
      return std::make_unique<NetworkCounter>(k44_network());
    default:
      return std::make_unique<NetworkCounter>(k2222_network());
  }
}

const char* counter_name(int which) {
  switch (which) {
    case 0:
      return "atomic";
    case 1:
      return "mutex";
    case 2:
      return "tree16";
    case 3:
      return "K(4x4)";
    default:
      return "K(2^4)";
  }
}

/// Measured preamble: ops/sec and the counter-linearity check (every value
/// in {0..N-1} handed out exactly once) per implementation and thread
/// count, emitted to BENCH_fetch_inc.json. The process exits non-zero if
/// any implementation violates uniqueness — that is the correctness gate;
/// the throughput columns are data.
int emit_report() {
  bench::print_header(
      "Fetch&Increment implementations head to head",
      "counting networks spread one hot word over many balancers; the "
      "tree funnels everything through the root");
  std::printf("%-10s %8s %14s %8s\n", "counter", "threads", "ops/sec",
              "unique");
  bench::print_row_rule();

  bench::JsonReport report("BENCH_fetch_inc.json", "fetch_inc");
  constexpr std::uint64_t kOps = 20000;
  bool all_unique = true;
  for (int which = 0; which < 5; ++which) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const auto counter = make_counter(which);
      std::vector<std::vector<std::uint64_t>> values(threads);
      std::atomic<bool> go{false};
      std::vector<std::thread> pool;
      for (std::size_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
          values[t].reserve(kOps);
          while (!go.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
          for (std::uint64_t i = 0; i < kOps; ++i) {
            values[t].push_back(counter->next());
          }
        });
      }
      const auto t0 = std::chrono::steady_clock::now();
      go.store(true, std::memory_order_release);
      for (auto& th : pool) th.join();
      const auto t1 = std::chrono::steady_clock::now();
      const double seconds = std::chrono::duration<double>(t1 - t0).count();
      const double ops_per_sec =
          seconds > 0 ? static_cast<double>(kOps * threads) / seconds : 0.0;

      std::vector<std::uint64_t> all;
      for (const auto& v : values) all.insert(all.end(), v.begin(), v.end());
      std::sort(all.begin(), all.end());
      std::vector<std::uint64_t> expected(all.size());
      std::iota(expected.begin(), expected.end(), 0u);
      const bool unique = all == expected;
      all_unique = all_unique && unique;

      std::printf("%-10s %8zu %14.0f %8s\n", counter_name(which), threads,
                  ops_per_sec, bench::mark(unique));
      report.begin_row();
      report.kv("counter", counter_name(which));
      report.kv("threads", static_cast<std::uint64_t>(threads));
      report.kv("ops_per_sec", ops_per_sec);
      report.kv("unique", unique);
      report.end_row();
    }
  }
  std::printf("\n");
  return report.finish(all_unique) ? 0 : 1;
}

void BM_FetchInc(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const auto counter = make_counter(which);
  std::uint64_t total_ops = 0;
  constexpr std::uint64_t kOpsPerThread = 5000;
  for (auto _ : state) {
    std::atomic<bool> go{false};
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
          benchmark::DoNotOptimize(counter->next());
        }
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& th : pool) th.join();
    total_ops += kOpsPerThread * threads;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_ops));
  state.SetLabel(std::string(counter_name(which)) + " x" +
                 std::to_string(threads));
}
BENCHMARK(BM_FetchInc)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {1, 4}})
    ->MinTime(0.05)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  const int gate = emit_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return gate;
}
