// E10 — Propositions 3 and 5 mechanics: merger depth formula across
// factorizations and two-merger behavior, plus timed evaluation of T.
#include <benchmark/benchmark.h>

#include <random>

#include "bench_common.h"
#include "core/counting_network.h"
#include "core/factorization.h"
#include "core/merger.h"
#include "core/two_merger.h"
#include "seq/generators.h"
#include "sim/count_sim.h"

namespace {

using namespace scn;

void print_table() {
  bench::print_header("E10  Proposition 3 (merger depth, K instantiation)",
                      "depth(M) = d + (n-2) depth(S) = 1 + 3(n-2)");
  std::printf("%-16s %3s %9s %9s %6s\n", "factors", "n", "formula",
              "measured", "check");
  bench::print_row_rule();
  for (const std::vector<std::size_t>& f :
       {std::vector<std::size_t>{2, 2}, {2, 2, 2}, {3, 2, 2}, {2, 2, 2, 2},
        {3, 3, 3, 3}, {2, 2, 2, 2, 2}, {4, 3, 2, 4}}) {
    const Network net = make_merger_network(f, single_balancer_base(),
                                            StaircaseVariant::kRebalanceCount);
    const std::size_t formula = m_depth_formula(f.size(), 1, 3);
    std::printf("%-16s %3zu %9zu %9u %6s\n", format_factors(f).c_str(),
                f.size(), formula, net.depth(),
                bench::mark(net.depth() == formula));
  }

  std::printf("\nTwo-merger T(p, q, q): depth 2, merges any two step "
              "sequences:\n");
  std::printf("%-12s %7s %9s %9s\n", "shape", "width", "depth", "maxgate");
  bench::print_row_rule();
  for (const auto& [p, q] : {std::pair<std::size_t, std::size_t>{4, 4},
                            {8, 8},
                            {16, 16},
                            {16, 4}}) {
    const Network t = make_two_merger_network(p, q, q);
    std::printf("T(%2zu,%2zu,%2zu) %7zu %9u %9u\n", p, q, q, t.width(),
                t.depth(), t.max_gate_width());
  }
  std::printf("\n");
}

void BM_TwoMergerEval(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const auto q = static_cast<std::size_t>(state.range(1));
  const Network net = make_two_merger_network(p, q, q);
  std::mt19937_64 rng(1);
  std::vector<Count> in;
  const auto x0 = random_step_sequence(rng, p * q, 500);
  const auto x1 = random_step_sequence(rng, p * q, 500);
  in.insert(in.end(), x0.begin(), x0.end());
  in.insert(in.end(), x1.begin(), x1.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(output_counts(net, in));
  }
}
BENCHMARK(BM_TwoMergerEval)->Args({8, 8})->Args({16, 16})->Args({32, 32});

void BM_MergerEval(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<std::size_t> factors(n, 2);
  const Network net = make_merger_network(factors, single_balancer_base(),
                                          StaircaseVariant::kRebalanceCount);
  std::mt19937_64 rng(2);
  const std::size_t m = factors.back();
  const std::size_t len = product(factors) / m;
  std::vector<Count> in;
  for (std::size_t i = 0; i < m; ++i) {
    const auto x = random_step_sequence(rng, len, 200);
    in.insert(in.end(), x.begin(), x.end());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(output_counts(net, in));
  }
}
BENCHMARK(BM_MergerEval)->DenseRange(2, 8);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
