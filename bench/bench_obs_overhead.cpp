// E-OBS — observability overhead and measured-vs-predicted contention.
//
// Two experiments in one binary (docs/observability.md):
//
//  1. Overhead of the instrumentation on the bench_engine_batch workload
//     (K(4x4x4), 4096-lane SoA batch sort + the scalar tier), comparing a
//     plain run against a run with a trace actively recording. Built with
//     SCNET_OBS=OFF the macros are compiled out, both arms execute the
//     same code, and the measured ratio must stay within 2% — that is the
//     CI gate proving the kill switch works (exit code 1 on failure).
//     Built with SCNET_OBS=ON the same ratio is *reported* as the
//     enabled-mode cost of per-layer spans (not gated: recording spans is
//     expected to cost something; you only pay it while tracing).
//
//  2. The ConcurrentNetwork visit probe against the analytical contention
//     model: per-gate traffic measured by routing tokens with the probe
//     enabled, next to gate_traffic() predictions, joined by
//     compare_contention(). Round-robin balancers make measured traffic
//     nearly deterministic, so the hottest-gate fraction must land within
//     10% of the prediction (gated in every build — the probe is runtime
//     machinery, not SCNET_OBS-conditional).
//
// Emits BENCH_obs.json with both sections.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <random>
#include <vector>

#include "bench_common.h"
#include "core/k_network.h"
#include "core/l_network.h"
#include "engine/batch_engine.h"
#include "engine/execution_plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/contention_model.h"
#include "seq/generators.h"
#include "sim/concurrent_sim.h"

namespace {

using namespace scn;

constexpr std::size_t kBatch = 4096;
constexpr int kInnerReps = 8;   // per timing sample, to lift it out of noise
constexpr int kSamples = 9;     // best-of, alternating arms
constexpr double kOverheadGate = 0.02;       // compiled-out ceiling
constexpr double kContentionTolerance = 0.10;  // doc-stated (observability.md)

std::vector<std::vector<Count>> make_inputs(std::size_t width,
                                            std::size_t n) {
  std::mt19937_64 rng(99);
  std::vector<std::vector<Count>> inputs;
  inputs.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    inputs.push_back(random_count_vector(rng, width, 1000));
  }
  return inputs;
}

double time_once(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct OverheadResult {
  double idle_seconds = 0.0;    // best sample, tracer inactive
  double traced_seconds = 0.0;  // best sample, tracer recording
  [[nodiscard]] double overhead_fraction() const {
    return idle_seconds > 0 ? traced_seconds / idle_seconds - 1.0 : 0.0;
  }
};

// Best-of-kSamples for the workload with the tracer idle vs recording,
// alternating arms each round so drift (thermal, scheduler) hits both
// equally. The tracer restarts per traced sample, so the span buffer
// never approaches its cap and each sample pays the same recording cost.
OverheadResult measure_overhead(const std::function<void()>& workload) {
  OverheadResult r;
  workload();  // untimed warmup: fault in pages, settle caches
  for (int s = 0; s < kSamples; ++s) {
    const double idle = time_once([&] {
      for (int i = 0; i < kInnerReps; ++i) workload();
    });
    obs::Tracer::shared().start();
    const double traced = time_once([&] {
      for (int i = 0; i < kInnerReps; ++i) workload();
    });
    obs::Tracer::shared().stop();
    r.idle_seconds = s == 0 ? idle : std::min(r.idle_seconds, idle);
    r.traced_seconds = s == 0 ? traced : std::min(r.traced_seconds, traced);
  }
  obs::Tracer::shared().clear();
  return r;
}

struct ContentionRow {
  const char* network;
  std::size_t width = 0;
  std::size_t gates = 0;
  ContentionComparison cmp;
  [[nodiscard]] bool pass() const {
    return cmp.hottest_relative_error() <= kContentionTolerance;
  }
};

ContentionRow measure_contention(const char* name, const Network& net,
                                 std::size_t threads,
                                 std::uint64_t tokens_per_thread) {
  ContentionRow row;
  row.network = name;
  row.width = net.width();
  row.gates = net.gate_count();
  ConcurrentNetwork cnet(net);
  cnet.enable_visit_probe();
  const ConcurrentRunResult run =
      run_concurrent(cnet, threads, tokens_per_thread, /*seed=*/7);
  row.cmp = compare_contention(net, cnet.gate_visits(), run.tokens);
  return row;
}

bool emit_report(const OverheadResult& batch, const OverheadResult& scalar,
                 const std::vector<ContentionRow>& rows) {
  bench::print_header(
      "E-OBS  Observability overhead + measured-vs-predicted contention",
      "SCNET_OBS=OFF builds pay <= 2% on the batch-engine workload; "
      "probe traffic matches gate_traffic() within 10%");

  const bool gated = !obs::compiled_in();
  std::printf("observability compiled %s -> overhead %s\n\n",
              obs::compiled_in() ? "IN" : "OUT",
              gated ? "GATED at 2%" : "reported only");
  std::printf("%-22s %12s %12s %10s\n", "workload", "idle s", "traced s",
              "overhead");
  bench::print_row_rule();
  bool overhead_ok = true;
  const auto overhead_row = [&](const char* name, const OverheadResult& r) {
    const bool pass = !gated || r.overhead_fraction() <= kOverheadGate;
    overhead_ok = overhead_ok && pass;
    std::printf("%-22s %12.6f %12.6f %9.2f%% %s\n", name, r.idle_seconds,
                r.traced_seconds, 100.0 * r.overhead_fraction(),
                gated ? bench::mark(pass) : "");
  };
  overhead_row("K(4x4x4) batch 4096", batch);
  overhead_row("K(4x4x4) scalar", scalar);

  std::printf("\n%-12s %5s %6s %9s %10s %10s %8s %9s\n", "network", "w",
              "gates", "tokens", "pred hot", "meas hot", "rel err",
              "mean |e|");
  bench::print_row_rule();
  bool contention_ok = true;
  for (const ContentionRow& row : rows) {
    contention_ok = contention_ok && row.pass();
    std::printf("%-12s %5zu %6zu %9llu %10.4f %10.4f %7.2f%% %9.5f %s\n",
                row.network, row.width, row.gates,
                static_cast<unsigned long long>(row.cmp.tokens),
                row.cmp.predicted_hottest, row.cmp.measured_hottest,
                100.0 * row.cmp.hottest_relative_error(),
                row.cmp.mean_abs_error, bench::mark(row.pass()));
  }

  FILE* json = std::fopen("BENCH_obs.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"experiment\": \"obs_overhead\",\n");
    std::fprintf(json, "  \"obs_compiled_in\": %s,\n",
                 obs::compiled_in() ? "true" : "false");
    std::fprintf(json, "  \"batch_size\": %zu,\n", kBatch);
    std::fprintf(json, "  \"overhead_gate\": %.2f,\n",
                 gated ? kOverheadGate : -1.0);
    std::fprintf(json, "  \"overhead\": [\n");
    const auto json_overhead = [&](const char* name, const OverheadResult& r,
                                   bool last) {
      std::fprintf(json,
                   "    {\"workload\": \"%s\", \"idle_seconds\": %.6f, "
                   "\"traced_seconds\": %.6f, \"overhead_fraction\": %.4f}%s\n",
                   name, r.idle_seconds, r.traced_seconds,
                   r.overhead_fraction(), last ? "" : ",");
    };
    json_overhead("batch", batch, false);
    json_overhead("scalar", scalar, true);
    std::fprintf(json, "  ],\n  \"contention_tolerance\": %.2f,\n",
                 kContentionTolerance);
    std::fprintf(json, "  \"contention\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const ContentionRow& row = rows[i];
      std::fprintf(
          json,
          "    {\"network\": \"%s\", \"width\": %zu, \"gates\": %zu, "
          "\"tokens\": %llu, \"predicted_hottest\": %.6f, "
          "\"measured_hottest\": %.6f, \"hottest_relative_error\": %.6f, "
          "\"mean_abs_error\": %.6f, \"pass\": %s}%s\n",
          row.network, row.width, row.gates,
          static_cast<unsigned long long>(row.cmp.tokens),
          row.cmp.predicted_hottest, row.cmp.measured_hottest,
          row.cmp.hottest_relative_error(), row.cmp.mean_abs_error,
          row.pass() ? "true" : "false", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"pass\": %s\n}\n",
                 overhead_ok && contention_ok ? "true" : "false");
    std::fclose(json);
    std::printf("\nwrote BENCH_obs.json\n");
  }
  std::printf("\n");
  return overhead_ok && contention_ok;
}

const Network& k64() {
  static const Network net = make_k_network({4, 4, 4});
  return net;
}

void BM_BatchIdle(benchmark::State& state) {
  const ExecutionPlan plan = compile_plan(k64());
  const auto inputs = make_inputs(k64().width(), kBatch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_sort_batch(plan, inputs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_BatchIdle)->Unit(benchmark::kMillisecond);

void BM_BatchTraced(benchmark::State& state) {
  const ExecutionPlan plan = compile_plan(k64());
  const auto inputs = make_inputs(k64().width(), kBatch);
  obs::Tracer::shared().start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_sort_batch(plan, inputs));
    // Keep the buffer small so late iterations pay what early ones do.
    obs::Tracer::shared().clear();
  }
  obs::Tracer::shared().stop();
  obs::Tracer::shared().clear();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_BatchTraced)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const ExecutionPlan plan = compile_plan(k64());
  const auto inputs = make_inputs(k64().width(), kBatch);

  const OverheadResult batch = measure_overhead(
      [&] { benchmark::DoNotOptimize(plan_sort_batch(plan, inputs)); });
  const OverheadResult scalar = measure_overhead([&] {
    for (const auto& in : inputs) {
      benchmark::DoNotOptimize(plan_comparator_output(plan, in));
    }
  });

  std::vector<ContentionRow> rows;
  rows.push_back(
      measure_contention("K(4x4)", make_k_network({4, 4}), 2, 20000));
  rows.push_back(
      measure_contention("K(2x2x2x2)", make_k_network({2, 2, 2, 2}), 2,
                         20000));
  rows.push_back(
      measure_contention("L(3x4)", make_l_network({3, 4}), 2, 20000));

  if (!emit_report(batch, scalar, rows)) {
    std::fprintf(stderr,
                 "OBS GATE FAILED: overhead above 2%% with observability "
                 "compiled out, or probe traffic outside the 10%% "
                 "contention-model tolerance\n");
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
