// Acyclic vs cyclic arbitrary width (§2 vs this paper): the
// Aharonson-Attiya feedback adaptation pays recirculation passes; the L
// construction is one fixed-depth pass. Table: per-width mean base-network
// traversals per token for the cyclic scheme vs depth of the acyclic L.
#include <benchmark/benchmark.h>

#include <random>

#include "baseline/bitonic.h"
#include "baseline/cyclic_adapter.h"
#include "bench_common.h"
#include "core/factorization.h"
#include "core/l_network.h"

namespace {

using namespace scn;

void print_table() {
  bench::print_header(
      "Acyclic (this paper) vs cyclic (related work) at arbitrary widths",
      "the cyclic scheme recirculates tokens through a width-2^k bitonic "
      "network; L counts in one bounded-depth pass");
  std::printf("%5s | %18s %14s | %12s %9s\n", "w", "cyclic base",
              "passes/token", "L factors", "L depth");
  bench::print_row_rule();
  std::mt19937_64 rng(3);
  for (const std::size_t w : {3u, 5u, 6u, 7u, 11u, 13u, 24u, 30u}) {
    std::size_t k = 0;
    while ((std::size_t{1} << k) < w) ++k;
    const Network base = make_bitonic_network(k);
    CyclicCountingAdapter adapter(base, w);
    std::uniform_int_distribution<std::size_t> wire(0, w - 1);
    for (int i = 0; i < 3000; ++i) {
      adapter.traverse(static_cast<Wire>(wire(rng)));
    }
    const double passes = static_cast<double>(adapter.total_passes()) /
                          static_cast<double>(adapter.total_tokens());
    const auto factors = balanced_factorization(w, 8);
    const Network l = make_l_network(factors);
    std::printf("%5zu | bitonic%-4zu depth %2zu %14.3f | %12s %9u\n", w,
                std::size_t{1} << k, bitonic_depth_formula(k), passes,
                format_factors(factors).c_str(), l.depth());
  }
  std::printf("\n(passes/token > 1 is pure overhead the acyclic family "
              "never pays; worse, recirculation makes latency unbounded "
              "in adversarial schedules)\n\n");
}

void BM_CyclicTraverse(benchmark::State& state) {
  const std::size_t w = static_cast<std::size_t>(state.range(0));
  std::size_t k = 0;
  while ((std::size_t{1} << k) < w) ++k;
  const Network base = make_bitonic_network(k);
  CyclicCountingAdapter adapter(base, w);
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<std::size_t> wire(0, w - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        adapter.traverse(static_cast<Wire>(wire(rng))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CyclicTraverse)->Arg(7)->Arg(13)->Arg(30);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
