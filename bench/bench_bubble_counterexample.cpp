// E6 — Figure 3: a sorting network that is not a counting network. Finds a
// violating token distribution for the bubble-sort network by bounded
// exhaustion, replays it, and confirms the same network sorts all binary
// inputs. Then times the two verifiers.
#include <benchmark/benchmark.h>

#include "baseline/bubble.h"
#include "bench_common.h"
#include "sim/count_sim.h"
#include "verify/checkers.h"
#include "verify/counting_verify.h"
#include "verify/sorting_verify.h"

namespace {

using namespace scn;

void print_table() {
  bench::print_header(
      "E6  Figure 3: sorting does not imply counting",
      "the bubble-sort network sorts, but replacing comparators with "
      "balancers does not count");
  std::printf("%-6s %8s %10s %12s %-24s\n", "width", "sorts?", "counts?",
              "witness", "witness -> output");
  bench::print_row_rule();
  for (const std::size_t w : {3u, 4u, 5u, 6u}) {
    const Network net = make_bubble_network(w);
    const bool sorts = verify_sorting_exhaustive(net).ok;
    const CountingVerdict v = verify_counting_exhaustive(net, 3);
    std::string witness = "-", result = "-";
    if (!v.ok) {
      witness = format_sequence(v.counterexample);
      result = format_sequence(v.bad_output);
    }
    std::printf("%-6zu %8s %10s   [%s] -> [%s]\n", w, sorts ? "yes" : "NO",
                v.ok ? "yes" : "NO", witness.c_str(), result.c_str());
  }
  std::printf("\n(the counting column must read NO for width >= 3 — that is "
              "the paper's point)\n\n");
}

void BM_CountingVerifierRejectsBubble(benchmark::State& state) {
  const Network net = make_bubble_network(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_counting(net).ok);
  }
}
BENCHMARK(BM_CountingVerifierRejectsBubble)->DenseRange(3, 6);

void BM_SortingVerifierAcceptsBubble(benchmark::State& state) {
  const Network net = make_bubble_network(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_sorting_exhaustive(net).ok);
  }
}
BENCHMARK(BM_SortingVerifierAcceptsBubble)->DenseRange(3, 6);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
