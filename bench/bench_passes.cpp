// E-OPT — the canonical pass pipeline and the compiled-plan cache.
//
// Three questions, one table per network (K / L / bitonic / batcher at
// widths 24-120, plus a deliberately redundant composed network):
//
//   1. What do the pipelines remove?  gates/layers before vs after the
//      `default`, `aggressive`, and `optimal` levels (comparator
//      semantics).
//   2. What does the cache save at compile time?  pipeline + plan
//      compilation on a cold cache (miss) vs a warm lookup (hit).
//   3. What does that mean end to end?  vectors/sec for a 512-vector
//      batch when every call re-optimizes vs when the plan is cached.
//
// The preamble emits BENCH_passes.json and the process exits non-zero if
// the `default` pipeline ever INCREASES depth, or the `optimal` pipeline
// ever exceeds `default` — CI runs this binary with --benchmark_filter=^$
// as a depth-regression gate. (bench_depth_opt.cpp is the companion gate
// proving the peephole's depth WINS; this one only guards against loss.)
#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <random>

#include "baseline/batcher.h"
#include "baseline/bitonic.h"
#include "baseline/bubble.h"
#include "bench_common.h"
#include "core/k_network.h"
#include "core/l_network.h"
#include "engine/batch_engine.h"
#include "engine/execution_plan.h"
#include "net/transform.h"
#include "opt/pass.h"
#include "opt/plan_cache.h"
#include "runtime/runtime.h"
#include "seq/generators.h"

namespace {

using namespace scn;

constexpr std::size_t kBatch = 512;

using bench::best_time;

struct Measurement {
  const char* network;
  std::size_t width;
  std::size_t gates;
  std::uint32_t depth;
  std::size_t gates_default;    // gate count after the default pipeline
  std::uint32_t depth_default;  // depth after the default pipeline
  std::size_t gates_aggressive;
  std::uint32_t depth_aggressive;
  std::size_t gates_optimal;    // gate count after the optimal pipeline
  std::uint32_t depth_optimal;  // depth after the optimal pipeline
  double compile_miss_s;  // optimize + compile, cold cache
  double compile_hit_s;   // warm cache lookup
  double e2e_miss_vps;    // batch sort, re-optimizing every call
  double e2e_hit_vps;     // batch sort through the cache
};

Measurement measure(const char* name, const Network& net) {
  Measurement m{};
  m.network = name;
  m.width = net.width();
  m.gates = net.gate_count();
  m.depth = net.depth();

  const PipelineResult dflt = optimize_network(net, PassLevel::kDefault);
  m.gates_default = dflt.network.gate_count();
  m.depth_default = dflt.network.depth();
  const PipelineResult aggr = optimize_network(net, PassLevel::kAggressive);
  m.gates_aggressive = aggr.network.gate_count();
  m.depth_aggressive = aggr.network.depth();
  const PipelineResult opt = optimize_network(net, PassLevel::kOptimal);
  m.gates_optimal = opt.network.gate_count();
  m.depth_optimal = opt.network.depth();

  PlanCache cache(8);
  m.compile_miss_s = best_time([&] {
    cache.clear();
    benchmark::DoNotOptimize(cache.compiled(net, PassLevel::kDefault));
  });
  (void)cache.compiled(net, PassLevel::kDefault);
  // A hit is far below clock resolution; amortize over many lookups.
  constexpr int kLookups = 2000;
  m.compile_hit_s = best_time([&] {
                      for (int i = 0; i < kLookups; ++i) {
                        benchmark::DoNotOptimize(
                            cache.compiled(net, PassLevel::kDefault));
                      }
                    }) /
                    kLookups;

  const auto inputs = bench::random_inputs(net.width(), kBatch, 1234);
  const auto n = static_cast<double>(kBatch);
  PlanCache e2e_cache(8);
  const double t_miss = best_time([&] {
    e2e_cache.clear();  // every call pays pipeline + plan compilation
    const CachedPlan cached = e2e_cache.compiled(net, PassLevel::kDefault);
    benchmark::DoNotOptimize(plan_sort_batch(*cached.plan, inputs));
  });
  (void)e2e_cache.compiled(net, PassLevel::kDefault);
  const double t_hit = best_time([&] {
    const CachedPlan cached = e2e_cache.compiled(net, PassLevel::kDefault);
    benchmark::DoNotOptimize(plan_sort_batch(*cached.plan, inputs));
  });
  m.e2e_miss_vps = n / t_miss;
  m.e2e_hit_vps = n / t_hit;
  return m;
}

/// True iff the depth-preserving pipelines kept their bounds (the
/// regression CI gates on): default never above construction depth, and
/// optimal (default + peephole-optimal) never above default.
bool depth_ok(const Measurement& m) {
  return m.depth_default <= m.depth && m.depth_optimal <= m.depth_default;
}

void emit_report(const std::vector<Measurement>& ms) {
  bench::print_header(
      "E-OPT  Pass pipeline + compiled-plan cache",
      "default pipeline never increases depth; cache removes recompilation");
  std::printf(
      "%-18s %5s %6s %4s | %6s %4s | %6s %4s | %6s %4s | %10s %10s %8s\n",
      "network", "w", "gates", "d", "g:dflt", "d", "g:aggr", "d", "g:opt",
      "d", "miss (us)", "hit (us)", "e2e x");
  bench::print_row_rule();
  bench::JsonReport report("BENCH_passes.json", "pass_pipeline");
  bool all_pass = true;
  for (const Measurement& m : ms) {
    const bool pass = depth_ok(m);
    all_pass = all_pass && pass;
    const double cache_speedup = m.compile_miss_s / m.compile_hit_s;
    const double e2e_speedup = m.e2e_hit_vps / m.e2e_miss_vps;
    std::printf(
        "%-18s %5zu %6zu %4u | %6zu %4u | %6zu %4u | %6zu %4u | %10.1f "
        "%10.3f %7.2fx %s\n",
        m.network, m.width, m.gates, m.depth, m.gates_default, m.depth_default,
        m.gates_aggressive, m.depth_aggressive, m.gates_optimal,
        m.depth_optimal, m.compile_miss_s * 1e6, m.compile_hit_s * 1e6,
        e2e_speedup, bench::mark(pass));
    report.begin_row();
    report.kv("network", m.network);
    report.kv("width", static_cast<std::uint64_t>(m.width));
    report.kv("gates", static_cast<std::uint64_t>(m.gates));
    report.kv("depth", static_cast<std::uint64_t>(m.depth));
    report.kv("batch_size", static_cast<std::uint64_t>(kBatch));
    report.kv("default_gates", static_cast<std::uint64_t>(m.gates_default));
    report.kv("default_depth", static_cast<std::uint64_t>(m.depth_default));
    report.kv("gates_removed",
              static_cast<std::uint64_t>(m.gates - m.gates_default));
    report.kv("layers_removed",
              static_cast<std::uint64_t>(m.depth - m.depth_default));
    report.kv("aggressive_gates",
              static_cast<std::uint64_t>(m.gates_aggressive));
    report.kv("aggressive_depth",
              static_cast<std::uint64_t>(m.depth_aggressive));
    report.kv("optimal_gates", static_cast<std::uint64_t>(m.gates_optimal));
    report.kv("optimal_depth", static_cast<std::uint64_t>(m.depth_optimal));
    report.kv("compile_miss_us", m.compile_miss_s * 1e6);
    report.kv("compile_hit_us", m.compile_hit_s * 1e6);
    report.kv("cache_compile_speedup", cache_speedup);
    report.kv("e2e_miss_vps", m.e2e_miss_vps);
    report.kv("e2e_hit_vps", m.e2e_hit_vps);
    report.kv("e2e_cached_speedup", e2e_speedup);
    report.kv("depth_ok", pass);
    report.end_row();
  }
  report.finish(all_pass);
  std::printf("\n");
}

// --- google-benchmark timing loops -----------------------------------

const Network& batcher120() {
  static const Network net = make_batcher_network(120);
  return net;
}

void BM_OptimizeDefaultBatcher120(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        optimize_network(batcher120(), PassLevel::kDefault));
  }
}
BENCHMARK(BM_OptimizeDefaultBatcher120)->Unit(benchmark::kMillisecond);

void BM_StructuralHashBatcher120(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(structural_hash(batcher120()));
  }
}
BENCHMARK(BM_StructuralHashBatcher120)->Unit(benchmark::kMicrosecond);

void BM_CacheHitLookupBatcher120(benchmark::State& state) {
  PlanCache cache(4);
  (void)cache.compiled(batcher120(), PassLevel::kDefault);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.compiled(batcher120(), PassLevel::kDefault));
  }
}
BENCHMARK(BM_CacheHitLookupBatcher120)->Unit(benchmark::kMicrosecond);

void BM_CacheMissCompileK100(benchmark::State& state) {
  Runtime rt;  // fresh runtime: construction never touches the shared caches
  const Network net = make_k_network({4, 5, 5}, rt);
  PlanCache cache(4);
  for (auto _ : state) {
    cache.clear();
    benchmark::DoNotOptimize(cache.compiled(net, PassLevel::kDefault));
  }
}
BENCHMARK(BM_CacheMissCompileK100)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::vector<Measurement> ms;
  // Each measured network is built against its own fresh Runtime (and
  // measure() uses private PlanCaches), so no phase warms state another
  // phase observes: BENCH_passes.json is order-independent.
  {
    Runtime rt;
    ms.push_back(measure("K(2x3x4)", make_k_network({2, 3, 4}, rt)));
  }
  {
    Runtime rt;
    ms.push_back(measure("K(4x5x5)", make_k_network({4, 5, 5}, rt)));
  }
  {
    Runtime rt;
    ms.push_back(measure("L(2x3x4)", make_l_network({2, 3, 4}, rt)));
  }
  {
    Runtime rt;
    ms.push_back(measure("L(4x4x4)", make_l_network({4, 4, 4}, rt)));
  }
  ms.push_back(measure("bitonic32", make_bitonic_network(5)));
  ms.push_back(measure("batcher120", batcher120()));
  // A redundant composition: a full sorter followed by another sorting
  // pass. zero-one-elim should strip the entire second sorter. (Width 16
  // keeps it within the default exhaustive 0-1 width cap.)
  ms.push_back(measure("batcher16+bubble",
                       compose(make_batcher_network(16),
                               make_bubble_network(16))));
  emit_report(ms);
  bool all_ok = true;
  for (const Measurement& m : ms) all_ok = all_ok && depth_ok(m);
  if (!all_ok) {
    std::fprintf(stderr,
                 "DEPTH REGRESSION: a depth-preserving pipeline (default or "
                 "optimal) increased depth on at least one network\n");
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
