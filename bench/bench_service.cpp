// E-SVC — the sharded counting service under saturation: millions of
// increments through 1/2/4/8 shards vs a single network of the same TOTAL
// width vs the atomic / mutex baselines, across thread counts and arrival
// schedules.
//
// The comparison is depth-for-depth honest: S shards of width-16 K(2^4)
// are matched against ONE width-16*S network built from 2-balancers, so
// both spread load over the same number of wires — but the single network
// pays depth(16*S) fetch-adds per token while a shard token pays
// depth(16) + 1 (the dispatch word). That is the composition payoff the
// service exists for, and it holds even time-sliced on one core.
//
// After every measured run the harness quiesces and verifies counter
// linearity (ShardManager::verify_linearity(): each value handed out
// exactly once) and the step property of every shard's outputs. The
// preamble emits BENCH_service.json with the throughput-vs-threads curves
// and exits non-zero if verification fails or the regression gates do
// (4-shard service must beat the matched single network at max threads;
// both must beat the mutex baseline), so CI can run the binary as a gate.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/k_network.h"
#include "count/fetch_inc.h"
#include "runtime/runtime.h"
#include "service/saturate.h"
#include "service/shard_manager.h"
#include "verify/checkers.h"

namespace {

using namespace scn;

constexpr std::size_t kShardCounts[] = {1, 2, 4, 8};
constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};
constexpr std::uint64_t kTokensPerThread = 40000;

// A single counting network with the same total width as `shards` shards
// of K(2^4): width 16*S from 2-balancers (the classic construction), the
// fair "one big network" alternative to sharding.
const Network& matched_network(std::size_t shards) {
  static std::vector<std::unique_ptr<Network>> cache(9);
  if (cache[shards] == nullptr) {
    std::size_t log2w = 4;  // 16 = 2^4
    for (std::size_t s = shards; s > 1; s >>= 1) ++log2w;
    cache[shards] = std::make_unique<Network>(
        make_k_network(std::vector<std::size_t>(log2w, 2)));
  }
  return *cache[shards];
}

double measure_counter(FetchIncCounter& counter, std::size_t threads,
                       std::uint64_t tokens_per_thread) {
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::uint64_t i = 0; i < tokens_per_thread; ++i) {
        benchmark::DoNotOptimize(counter.next());
      }
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  return seconds > 0 ? static_cast<double>(tokens_per_thread * threads) /
                           seconds
                     : 0.0;
}

struct Curves {
  // tokens/sec indexed by [impl][thread index]; impls are the sharded
  // services, then matched single networks, then atomic, then mutex.
  std::vector<std::string> names;
  std::vector<std::vector<double>> tps;
  bool verified = true;
  std::string failure;
};

Curves measure_all() {
  Curves curves;
  // Sharded service, S in {1, 2, 4, 8}.
  for (const std::size_t shards : kShardCounts) {
    std::vector<double> row;
    for (const std::size_t threads : kThreadCounts) {
      Runtime rt;
      ShardManager service(ShardManager::Options{.shards = shards}, rt);
      SaturationOptions opts;
      opts.threads = threads;
      opts.tokens_per_thread = kTokensPerThread;
      const SaturationResult res = run_saturation(service, opts, rt);
      if (!res.linearity.ok) {
        curves.verified = false;
        curves.failure = "sharded S=" + std::to_string(shards) + " x" +
                         std::to_string(threads) + ": " +
                         res.linearity.detail;
      }
      row.push_back(res.tokens_per_second());
    }
    curves.names.push_back("sharded" + std::to_string(shards) + "xK(2^4)");
    curves.tps.push_back(std::move(row));
  }
  // Matched-total-width single networks.
  for (const std::size_t shards : kShardCounts) {
    const Network& net = matched_network(shards);
    std::vector<double> row;
    for (const std::size_t threads : kThreadCounts) {
      NetworkCounter counter(net);
      row.push_back(measure_counter(counter, threads, kTokensPerThread));
    }
    curves.names.push_back("single-w" + std::to_string(net.width()));
    curves.tps.push_back(std::move(row));
  }
  // Flat baselines.
  for (int which = 0; which < 2; ++which) {
    std::vector<double> row;
    for (const std::size_t threads : kThreadCounts) {
      std::unique_ptr<FetchIncCounter> counter;
      if (which == 0) {
        counter = std::make_unique<AtomicCounter>();
      } else {
        counter = std::make_unique<MutexCounter>();
      }
      row.push_back(measure_counter(*counter, threads, kTokensPerThread));
    }
    curves.names.push_back(which == 0 ? "atomic" : "mutex");
    curves.tps.push_back(std::move(row));
  }
  return curves;
}

int emit_report(const Curves& curves) {
  bench::print_header(
      "E-SVC  Sharded counting service saturation (tokens/sec)",
      "S shards of K(2^4) pay depth 12 + 1 per token; one matched-width "
      "network of 2-balancers pays its full depth — sharding wins");
  std::printf("%-18s", "impl");
  for (const std::size_t threads : kThreadCounts) {
    std::printf(" %11s", ("x" + std::to_string(threads)).c_str());
  }
  std::printf("\n");
  bench::print_row_rule();

  bench::JsonReport report("BENCH_service.json", "service_saturation");
  for (std::size_t i = 0; i < curves.names.size(); ++i) {
    std::printf("%-18s", curves.names[i].c_str());
    for (std::size_t j = 0; j < curves.tps[i].size(); ++j) {
      std::printf(" %11.0f", curves.tps[i][j]);
      report.begin_row();
      report.kv("impl", curves.names[i]);
      report.kv("threads", static_cast<std::uint64_t>(kThreadCounts[j]));
      report.kv("tokens_per_sec", curves.tps[i][j]);
      report.end_row();
    }
    std::printf("\n");
  }
  std::printf("\n");

  // Regression gates, at the highest thread count. The sharded-vs-single
  // comparison is per-token depth (13 fetch-adds vs 35), so it holds on any
  // host. The mutex comparison only manifests under real parallelism: on a
  // single-core runner the lock is never held across a preemption, so
  // MutexCounter runs at its uncontended fast-path speed and no
  // network-based counter can beat it on wall clock. Gate on it only where
  // the hardware can actually produce the contention.
  const std::size_t last = std::size(kThreadCounts) - 1;
  auto tps_of = [&](const std::string& name) {
    for (std::size_t i = 0; i < curves.names.size(); ++i) {
      if (curves.names[i] == name) return curves.tps[i][last];
    }
    return 0.0;
  };
  const bool parallel_host = !bench::single_core_host();
  const double sharded4 = tps_of("sharded4xK(2^4)");
  const double single64 = tps_of("single-w64");
  const double mutex_tps = tps_of("mutex");
  const bool gate_shard = sharded4 > single64;
  const bool gate_net_mutex = !parallel_host || single64 > mutex_tps;
  const bool gate_shard_mutex = !parallel_host || sharded4 > mutex_tps;
  std::printf("gates at x%zu threads:\n", kThreadCounts[last]);
  std::printf("  sharded4 > single-w64   %12.0f vs %12.0f  %s\n", sharded4,
              single64, bench::mark(gate_shard));
  std::printf("  single-w64 > mutex      %12.0f vs %12.0f  %s%s\n", single64,
              mutex_tps, bench::mark(gate_net_mutex),
              parallel_host ? "" : " (single-core host: informational)");
  std::printf("  sharded4 > mutex        %12.0f vs %12.0f  %s%s\n", sharded4,
              mutex_tps, bench::mark(gate_shard_mutex),
              parallel_host ? "" : " (single-core host: informational)");
  std::printf("  linearity + step        %s%s\n",
              bench::mark(curves.verified),
              curves.verified ? "" : (" (" + curves.failure + ")").c_str());

  const bool pass = gate_shard && gate_net_mutex && gate_shard_mutex &&
                    curves.verified;
  return report.finish(pass) ? 0 : 1;
}

// Schedule sensitivity: the sharded service under every arrival schedule.
void BM_ServiceSchedule(benchmark::State& state) {
  const auto kind = static_cast<ScheduleKind>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  Runtime rt;
  ShardManager service(ShardManager::Options{.shards = 4}, rt);
  SaturationOptions opts;
  opts.threads = threads;
  opts.tokens_per_thread = 5000;
  opts.schedule.kind = kind;
  std::uint64_t tokens = 0;
  for (auto _ : state) {
    const SaturationResult res = run_saturation(service, opts, rt);
    if (!res.linearity.ok) {
      state.SkipWithError(res.linearity.detail.c_str());
      return;
    }
    tokens += res.tokens;
    service.quiesce();
    (void)service.rebalance();  // fresh epoch per iteration
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tokens));
  state.SetLabel(std::string(to_string(kind)) + " x" +
                 std::to_string(threads));
}
BENCHMARK(BM_ServiceSchedule)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 4}})
    ->MinTime(0.05)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Async front end vs synchronous calls at the same token volume.
void BM_ServiceFrontEnd(benchmark::State& state) {
  const bool async = state.range(0) != 0;
  const auto threads = static_cast<std::size_t>(state.range(1));
  Runtime rt;
  ShardManager service(ShardManager::Options{.shards = 4}, rt);
  SaturationOptions opts;
  opts.threads = threads;
  opts.tokens_per_thread = 5000;
  opts.async = async;
  std::uint64_t tokens = 0;
  for (auto _ : state) {
    const SaturationResult res = run_saturation(service, opts, rt);
    if (!res.linearity.ok) {
      state.SkipWithError(res.linearity.detail.c_str());
      return;
    }
    tokens += res.tokens;
    service.quiesce();
    (void)service.rebalance();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tokens));
  state.SetLabel(std::string(async ? "async" : "sync") + " x" +
                 std::to_string(threads));
}
BENCHMARK(BM_ServiceFrontEnd)
    ->ArgsProduct({{0, 1}, {1, 4}})
    ->MinTime(0.05)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  const int gate = emit_report(measure_all());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return gate;
}
