// Smoothing-vs-depth figure: how quickly prefixes of each construction
// drive the output spread toward 1 (the counting guarantee). Also the
// periodic network block by block. This is the "how much network do you
// actually need for load balancing" table.
#include <benchmark/benchmark.h>

#include "baseline/periodic.h"
#include "bench_common.h"
#include "core/k_network.h"
#include "core/l_network.h"
#include "net/transform.h"
#include "verify/smoothing.h"

namespace {

using namespace scn;

void print_prefix_table(const char* name, const Network& net) {
  std::printf("%-10s depth %2u | spread by prefix depth:", name, net.depth());
  SmoothingProbeOptions opts;
  opts.max_total = static_cast<Count>(3 * net.width());
  opts.random_per_total = 4;
  for (std::size_t d = 0; d <= net.depth(); ++d) {
    const SmoothingReport r = probe_smoothing(prefix_layers(net, d), opts);
    std::printf(" %lld", static_cast<long long>(r.worst_spread));
  }
  std::printf("\n");
}

void print_table() {
  bench::print_header(
      "Smoothing vs depth (worst output spread, probed loads)",
      "counting networks end at spread <= 1; prefixes smooth gradually — "
      "partial networks already balance load");
  print_prefix_table("K(2^4)", make_k_network({2, 2, 2, 2}));
  print_prefix_table("K(4x4)", make_k_network({4, 4}));
  print_prefix_table("L(4x4)", make_l_network({4, 4}));
  print_prefix_table("periodic16", make_periodic_network(4));
  std::printf("\n");
}

void BM_ProbeSmoothing(benchmark::State& state) {
  const Network net = make_k_network({2, 2, 2, 2});
  SmoothingProbeOptions opts;
  opts.max_total = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(probe_smoothing(net, opts).worst_spread);
  }
}
BENCHMARK(BM_ProbeSmoothing);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
