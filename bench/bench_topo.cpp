// E-TOPO — placement-aware execution vs blind striping on the machine's
// (or a synthetic) hardware topology.
//
// Two experiments, both written to BENCH_topo.json:
//
//   1. Threaded batch sort throughput with the PlacementPlan lane
//      partition ON vs OFF, across widths. Placed execution keeps each
//      lane range on its home node's worker group, so the win scales with
//      the interconnect penalty — which a single-node host does not have.
//   2. Sharded service saturation with node-affine shard runtimes ON vs
//      OFF (same token volume, linearity verified either way).
//
// Gating policy mirrors the tune gate: on a REAL multi-node machine the
// placed path must hold at least 0.95x of blind striping (placement that
// loses throughput outright is a solver bug); on single-node or synthetic
// topologies the numbers are informational — synthetic cpu ids cannot be
// pinned, so "placement" there exercises the code path, not the silicon.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/cost_model.h"
#include "core/k_network.h"
#include "engine/backend.h"
#include "engine/batch_engine.h"
#include "engine/execution_plan.h"
#include "perf/thread_pool.h"
#include "runtime/runtime.h"
#include "service/saturate.h"
#include "service/shard_manager.h"
#include "topo/placement.h"
#include "topo/topology.h"

namespace {

using namespace scn;

constexpr std::size_t kLanes = 4096;

struct TopoRow {
  std::string experiment;
  std::string label;
  double placed_vps = 0.0;
  double striped_vps = 0.0;
  [[nodiscard]] double ratio() const {
    return striped_vps > 0 ? placed_vps / striped_vps : 0.0;
  }
};

Runtime::Options runtime_options(bool placement) {
  Runtime::Options opts;
  opts.placement = placement;
  // Both runtimes share the process topology (SCNET_TOPOLOGY included) so
  // the ONLY difference between the two measurements is the lane split.
  opts.topology = std::shared_ptr<const topo::HardwareTopology>(
      &topo::HardwareTopology::shared(), [](const topo::HardwareTopology*) {});
  return opts;
}

double sort_vps(Runtime& rt, const ExecutionPlan& plan,
                const std::vector<std::vector<Count>>& inputs) {
  const double secs = bench::best_time([&] {
    benchmark::DoNotOptimize(
        engine::sort_batch(plan, inputs, rt, EngineBackend::kThreaded));
  });
  return secs > 0 ? static_cast<double>(inputs.size()) / secs : 0.0;
}

std::vector<TopoRow> measure_batch_rows() {
  std::vector<TopoRow> rows;
  for (const std::size_t factor_count : {3u, 4u, 5u}) {
    const std::vector<std::size_t> factors(factor_count, 2);
    Runtime placed_rt(runtime_options(true));
    Runtime striped_rt(runtime_options(false));
    const Network net = make_k_network(factors, placed_rt);
    const ExecutionPlan plan = compile_plan(net);
    const auto inputs = bench::random_inputs(net.width(), kLanes, 7);
    TopoRow row;
    row.experiment = "threaded_sort";
    row.label = "K(2^" + std::to_string(factor_count) + ") x" +
                std::to_string(kLanes) + " lanes";
    // Warm both pools before timing (first dispatch spawns workers).
    (void)sort_vps(placed_rt, plan, inputs);
    (void)sort_vps(striped_rt, plan, inputs);
    row.placed_vps = sort_vps(placed_rt, plan, inputs);
    row.striped_vps = sort_vps(striped_rt, plan, inputs);
    rows.push_back(row);
  }
  return rows;
}

double service_tps(bool node_affine) {
  Runtime rt(runtime_options(true));
  ShardManager::Options shard_opts;
  shard_opts.shards = 4;
  shard_opts.node_affine = node_affine;
  shard_opts.dispatch_offset = 0;
  ShardManager service(shard_opts, rt);
  SaturationOptions sat;
  sat.threads = 4;
  sat.tokens_per_thread = 20000;
  sat.async = false;
  const SaturationResult res = run_saturation(service, sat, rt);
  if (!res.linearity.ok) {
    std::fprintf(stderr, "linearity FAILED (node_affine=%d): %s\n",
                 node_affine ? 1 : 0, res.linearity.detail.c_str());
    return -1.0;
  }
  return res.tokens_per_second();
}

int emit_report() {
  const topo::HardwareTopology& topology = topo::HardwareTopology::shared();
  const bool enforced = topology.node_count() > 1 &&
                        !topology.is_synthetic() &&
                        !bench::single_core_host();
  bench::print_header(
      "E-TOPO: placement-aware execution vs blind striping",
      "locality-aware partitioning never loses to uniform spreading");
  std::printf("topology: %s%s\n", topology.describe().c_str(),
              enforced ? "" : " [informational: no real multi-node hardware]");
  bench::print_row_rule();

  bench::JsonReport report("BENCH_topo.json", "topo_placement");
  bool pass = true;

  std::printf("%-28s %14s %14s %7s\n", "case", "placed v/s", "striped v/s",
              "ratio");
  for (const TopoRow& row : measure_batch_rows()) {
    const bool row_ok = !enforced || row.ratio() >= 0.95;
    pass = pass && row_ok;
    std::printf("%-28s %14.0f %14.0f %6.2fx %s\n", row.label.c_str(),
                row.placed_vps, row.striped_vps, row.ratio(),
                bench::mark(row_ok));
    report.begin_row();
    report.kv("experiment", row.experiment);
    report.kv("case", row.label);
    report.kv("placed_vectors_per_sec", row.placed_vps);
    report.kv("striped_vectors_per_sec", row.striped_vps);
    report.kv("ratio", row.ratio());
    report.kv("enforced", enforced);
    report.end_row();
  }

  bench::print_row_rule();
  const double affine_tps = service_tps(true);
  const double blind_tps = service_tps(false);
  const bool service_ok =
      affine_tps > 0 && blind_tps > 0 &&
      (!enforced || affine_tps >= 0.95 * blind_tps);
  pass = pass && service_ok;
  std::printf("%-28s %14.0f %14.0f %6.2fx %s\n", "service 4 shards",
              affine_tps, blind_tps,
              blind_tps > 0 ? affine_tps / blind_tps : 0.0,
              bench::mark(service_ok));
  report.begin_row();
  report.kv("experiment", "service_saturation");
  report.kv("case", "4 shards, node-affine vs blind");
  report.kv("affine_tokens_per_sec", affine_tps);
  report.kv("blind_tokens_per_sec", blind_tps);
  report.kv("enforced", enforced);
  report.end_row();

  return report.finish(pass) ? 0 : 1;
}

// Microbenchmark view of the same comparison for `--benchmark_filter` use.
void BM_PlacedSort(benchmark::State& state) {
  const bool placement = state.range(0) != 0;
  Runtime rt(runtime_options(placement));
  const Network net = make_k_network({2, 2, 2, 2}, rt);
  const ExecutionPlan plan = compile_plan(net);
  const auto inputs = bench::random_inputs(net.width(), kLanes, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine::sort_batch(plan, inputs, rt, EngineBackend::kThreaded));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kLanes));
  state.SetLabel(placement ? "placed" : "striped");
}
BENCHMARK(BM_PlacedSort)->Arg(0)->Arg(1)->MinTime(0.05)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  const int gate = emit_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return gate;
}
