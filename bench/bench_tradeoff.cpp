// E7 — the family trade-off (§1, §6, and the Felten-LaMarca-Ladner [9]
// motivation): for a fixed width, each factorization trades depth against
// balancer width. The table shows structure; the timed section measures
// multithreaded shared-memory Fetch&Inc throughput per family member,
// reproducing the qualitative claim that intermediate balancer sizes win.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "core/factorization.h"
#include "core/family.h"
#include "sim/concurrent_sim.h"

namespace {

using namespace scn;

constexpr std::size_t kWidth = 64;

void print_table() {
  bench::print_header(
      "E7  Family trade-off at fixed width w = 64",
      "one network per factorization: small n => shallow + wide balancers, "
      "large n => deep + narrow balancers");
  std::printf("%-22s %3s %7s %9s %7s %10s %6s\n", "member", "n", "depth",
              "maxgate", "gates", "endpoints", "bound");
  bench::print_row_rule();
  bench::JsonReport report("BENCH_tradeoff.json", "family_tradeoff");
  bool all_pass = true;
  for (const NetworkKind kind : {NetworkKind::kK, NetworkKind::kL}) {
    for (const auto& m : enumerate_family(kWidth, kind)) {
      // The paper's balancer-width bounds: K stays within max(p_i p_j), L
      // within max(2, max p_i).
      const std::size_t bound =
          kind == NetworkKind::kK
              ? max_pair_product(m.factors)
              : std::max<std::size_t>(2, max_factor(m.factors));
      const bool ok = m.network.max_gate_width() <= bound;
      all_pass = all_pass && ok;
      std::printf("%-22s %3zu %7u %9u %7zu %10zu %6s\n", m.label().c_str(),
                  m.factors.size(), m.network.depth(),
                  m.network.max_gate_width(), m.network.gate_count(),
                  m.network.wire_endpoint_count(), bench::mark(ok));
      report.begin_row();
      report.kv("member", m.label());
      report.kv("kind", to_string(kind));
      report.kv("factor_count",
                static_cast<std::uint64_t>(m.factors.size()));
      report.kv("depth", static_cast<std::uint64_t>(m.network.depth()));
      report.kv("max_gate_width",
                static_cast<std::uint64_t>(m.network.max_gate_width()));
      report.kv("gates",
                static_cast<std::uint64_t>(m.network.gate_count()));
      report.kv("wire_endpoints",
                static_cast<std::uint64_t>(m.network.wire_endpoint_count()));
      report.kv("balancer_bound", static_cast<std::uint64_t>(bound));
      report.kv("within_bound", ok);
      report.end_row();
    }
    bench::print_row_rule();
  }
  report.finish(all_pass);
  std::printf("\n");
}

/// Throughput of the shared-memory token router per family member.
void BM_FamilyThroughput(benchmark::State& state) {
  static const auto members = [] {
    std::vector<FamilyMember> ms;
    for (auto& m : enumerate_family(kWidth, NetworkKind::kK)) {
      ms.push_back(std::move(m));
    }
    return ms;
  }();
  const auto& member = members[static_cast<std::size_t>(state.range(0))];
  const auto threads = static_cast<std::size_t>(state.range(1));
  ConcurrentNetwork cn(member.network);
  std::uint64_t tokens = 0;
  for (auto _ : state) {
    cn.reset();
    const auto res = run_concurrent(cn, threads, 4000);
    tokens += res.tokens;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tokens));
  state.SetLabel(member.label() + " depth=" +
                 std::to_string(member.network.depth()) + " maxgate=" +
                 std::to_string(member.network.max_gate_width()));
}
BENCHMARK(BM_FamilyThroughput)
    ->ArgsProduct({benchmark::CreateDenseRange(
                       0,
                       static_cast<long>(
                           all_factorizations(kWidth).size() - 1),
                       1),
                   {1, 4}})
    ->MinTime(0.05)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
