// Analytical companion to the family trade-off (E7): the alpha-beta
// contention model predicts, for each family member, latency as a function
// of concurrency — and therefore the crossover where narrow-deep beats
// wide-shallow. This regenerates the Felten-LaMarca-Ladner-style
// "intermediate balancer width wins" curve without needing a many-core
// host.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/family.h"
#include "perf/contention_model.h"

namespace {

using namespace scn;

constexpr double kAlpha = 1.0;   // per-hop base cost
constexpr double kBeta = 64.0;   // serialization cost of a contended word

void print_table() {
  bench::print_header(
      "Contention-model predictions at width 64 (alpha=1, beta=64)",
      "predicted latency = hops*alpha + (T-1)*hottest*beta; intermediate "
      "balancer widths minimize it at moderate concurrency");
  const auto members = enumerate_family(64, NetworkKind::kK);
  std::printf("%-22s %7s %9s |", "member", "hops", "hottest");
  for (const double t : {1.0, 8.0, 32.0, 128.0, 512.0}) {
    std::printf(" T=%-6.0f", t);
  }
  std::printf("\n");
  bench::print_row_rule();
  for (const auto& m : members) {
    const ContentionEstimate est = estimate_contention(m.network);
    std::printf("%-22s %7.1f %9.4f |", m.label().c_str(), est.hops_per_token,
                est.hottest_gate_fraction);
    for (const double t : {1.0, 8.0, 32.0, 128.0, 512.0}) {
      std::printf(" %-8.0f", est.predicted_latency(t, kAlpha, kBeta));
    }
    std::printf("\n");
  }
  // Winner per concurrency level.
  std::printf("\nbest member per concurrency: ");
  for (const double t : {1.0, 8.0, 32.0, 128.0, 512.0}) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < members.size(); ++i) {
      if (estimate_contention(members[i].network)
              .predicted_latency(t, kAlpha, kBeta) <
          estimate_contention(members[best].network)
              .predicted_latency(t, kAlpha, kBeta)) {
        best = i;
      }
    }
    std::printf("T=%.0f:%s  ", t, members[best].label().c_str());
  }
  std::printf("\n\n");
}

void BM_EstimateContention(benchmark::State& state) {
  const auto members = enumerate_family(64, NetworkKind::kK);
  const auto& net =
      members[static_cast<std::size_t>(state.range(0)) % members.size()]
          .network;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_contention(net).hops_per_token);
  }
}
BENCHMARK(BM_EstimateContention)->Arg(0)->Arg(3)->Arg(6);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
