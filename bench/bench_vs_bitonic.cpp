// E8 — §6 Discussion: constant-factor comparison against the classic
// bitonic counting network at widths 2^k. The bitonic network is shallower
// by a constant factor when 2-balancers are required; the family closes the
// gap (and inverts it) as balancer width grows.
#include <benchmark/benchmark.h>

#include "baseline/bitonic.h"
#include "baseline/periodic.h"
#include "bench_common.h"
#include "core/factorization.h"
#include "core/k_network.h"
#include "core/l_network.h"

namespace {

using namespace scn;

void print_table() {
  bench::print_header(
      "E8  Depth vs the bitonic network (w = 2^k)",
      "bitonic depth k(k+1)/2 beats K(2^n)'s 1.5n^2-3.5n+2 by a constant "
      "factor (§6); wider balancers reverse the comparison");
  std::printf("%3s %6s | %8s %9s | %9s %9s | %10s %9s\n", "k", "width",
              "bitonic", "periodic", "K(2^k)", "L(2^k)", "K(4^(k/2))",
              "K(2hlf)");
  bench::print_row_rule();
  for (std::size_t k = 2; k <= 10; ++k) {
    const std::size_t w = std::size_t{1} << k;
    const std::size_t bit = bitonic_depth_formula(k);
    const std::size_t per = k * k;
    const std::vector<std::size_t> twos(k, 2);
    const Network netk = make_k_network(twos);
    const Network netl = make_l_network(twos);
    // Fours: factorization into 4's (and one 2 if k odd).
    std::vector<std::size_t> fours(k / 2, 4);
    if (k % 2) fours.push_back(2);
    const Network net4 = make_k_network(fours);
    // Two half-width factors: 2^(k/2) each.
    std::vector<std::size_t> halves = {std::size_t{1} << (k / 2),
                                       std::size_t{1} << (k - k / 2)};
    const Network net2f = make_k_network(halves);
    std::printf("%3zu %6zu | %8zu %9zu | %9u %9u | %10u %9u\n", k, w, bit,
                per, netk.depth(), netl.depth(), net4.depth(), net2f.depth());
  }
  std::printf("\n(K/L depths use balancers wider than 2; the 2-balancer "
              "columns are the §6 comparison)\n\n");
}

void BM_BuildBitonic(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_bitonic_network(k).gate_count());
  }
}
BENCHMARK(BM_BuildBitonic)->DenseRange(2, 12);

void BM_BuildPeriodic(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_periodic_network(k).gate_count());
  }
}
BENCHMARK(BM_BuildPeriodic)->DenseRange(2, 12);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
