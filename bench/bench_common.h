// Shared helpers for the benchmark/experiment binaries. Each binary prints
// the table/figure it regenerates (paper claim vs measured) before running
// its google-benchmark timings, so `./bench_x` reproduces the experiment
// end to end.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "net/network.h"

namespace scn::bench {

inline void print_header(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("==============================================================\n");
}

inline void print_row_rule() {
  std::printf("--------------------------------------------------------------\n");
}

/// "PASS"/"FAIL" marker used in the printed tables.
inline const char* mark(bool ok) { return ok ? "ok " : "FAIL"; }

}  // namespace scn::bench
