// Shared helpers for the benchmark/experiment binaries. Each binary prints
// the table/figure it regenerates (paper claim vs measured) before running
// its google-benchmark timings, so `./bench_x` reproduces the experiment
// end to end.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "net/network.h"
#include "seq/generators.h"

namespace scn::bench {

/// True on hosts where wall-clock comparisons between concurrent
/// implementations are meaningless (everything is time-sliced onto one
/// core). Parallelism-sensitive gates go informational here — both the
/// bench binaries and `scnet_cli tune --gate` key off the same test.
inline bool single_core_host() {
  return std::thread::hardware_concurrency() <= 1;
}

/// Wall time of one call, in seconds.
inline double time_once(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best-of-`reps` wall time for `fn`, in seconds — the standard timing
/// primitive of every experiment preamble (min, not mean: the shortest
/// observed run is the least-perturbed one).
inline double best_time(const std::function<void()>& fn, int reps = 3) {
  double best = time_once(fn);
  for (int rep = 1; rep < reps; ++rep) best = std::min(best, time_once(fn));
  return best;
}

/// `n` random input vectors of `width` — the shared batch generator
/// (deterministic per seed, so every binary's inputs are reproducible).
inline std::vector<std::vector<Count>> random_inputs(std::size_t width,
                                                     std::size_t n,
                                                     std::uint64_t seed,
                                                     Count max_value = 1000) {
  std::mt19937_64 rng(seed);
  std::vector<std::vector<Count>> inputs;
  inputs.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    inputs.push_back(random_count_vector(rng, width, max_value));
  }
  return inputs;
}

inline void print_header(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("==============================================================\n");
}

inline void print_row_rule() {
  std::printf("--------------------------------------------------------------\n");
}

/// "PASS"/"FAIL" marker used in the printed tables.
inline const char* mark(bool ok) { return ok ? "ok " : "FAIL"; }

/// Machine-readable experiment report: the JSON shape every BENCH_*.json
/// shares — {"experiment": ..., "results": [ {...}, ... ], "pass": bool} —
/// with the comma/indent bookkeeping in one place. Usage:
///
///   bench::JsonReport report("BENCH_x.json", "x");
///   report.begin_row();
///   report.kv("network", "K(2^4)");
///   report.kv("tokens_per_sec", 1.2e6);
///   report.end_row();
///   report.finish(all_pass);           // writes tail + "wrote ..." line
///
/// A failed fopen degrades to a no-op (the printed table still appears);
/// finish() returns the pass flag either way so callers can exit on it.
class JsonReport {
 public:
  JsonReport(const char* path, const char* experiment) : path_(path) {
    file_ = std::fopen(path, "w");
    if (file_ != nullptr) {
      std::fprintf(file_, "{\n  \"experiment\": \"%s\",\n  \"results\": [\n",
                   experiment);
    }
  }
  ~JsonReport() {
    if (file_ != nullptr) finish(false);
  }
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  void begin_row() {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%s    {", rows_ == 0 ? "" : ",\n");
    ++rows_;
    first_kv_ = true;
  }
  void kv(const char* key, const char* value) {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%s\"%s\": \"%s\"", sep(), key, value);
  }
  void kv(const char* key, const std::string& value) {
    kv(key, value.c_str());
  }
  void kv(const char* key, double value) {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%s\"%s\": %.3f", sep(), key, value);
  }
  void kv(const char* key, std::uint64_t value) {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%s\"%s\": %llu", sep(), key,
                 static_cast<unsigned long long>(value));
  }
  void kv(const char* key, bool value) {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%s\"%s\": %s", sep(), key, value ? "true" : "false");
  }
  void end_row() {
    if (file_ == nullptr) return;
    std::fprintf(file_, "}");
  }

  /// Closes the report. Returns `pass` so `return report.finish(ok) ? 0 : 1`
  /// reads naturally in main().
  bool finish(bool pass) {
    if (file_ != nullptr) {
      std::fprintf(file_, "\n  ],\n  \"pass\": %s\n}\n",
                   pass ? "true" : "false");
      std::fclose(file_);
      file_ = nullptr;
      std::printf("\nwrote %s\n", path_.c_str());
    }
    return pass;
  }

 private:
  const char* sep() {
    const char* s = first_kv_ ? "" : ", ";
    first_kv_ = false;
    return s;
  }

  std::string path_;
  std::FILE* file_ = nullptr;
  std::size_t rows_ = 0;
  bool first_kv_ = true;
};

}  // namespace scn::bench
