// E5 — Figure 2: isomorphic sorting and counting networks on one topology
// (factors 2, 3, 5 => width 30, balancers of widths 2, 3 and 5). Runs the
// same network as a counter (token loads) and as a sorter (value loads) and
// prints both, then times the two evaluation modes.
#include <benchmark/benchmark.h>

#include <random>

#include "bench_common.h"
#include "core/l_network.h"
#include "seq/generators.h"
#include "sim/comparator_sim.h"
#include "sim/count_sim.h"
#include "verify/checkers.h"

namespace {

using namespace scn;

void print_table() {
  bench::print_header(
      "E5  Figure 2 isomorphism (factors 2 x 3 x 5)",
      "one topology, balancer widths {2,3,5}: counts as a balancing "
      "network AND sorts as a comparator network");
  const Network net = make_l_network({2, 3, 5});
  const auto hist = net.gate_width_histogram();
  std::printf("width=%zu depth=%u gates=%zu  widths 2:%zu 3:%zu 5:%zu\n\n",
              net.width(), net.depth(), net.gate_count(), hist[2], hist[3],
              hist[5]);

  std::mt19937_64 rng(2026);
  const auto tokens = random_count_vector(rng, 30, 47);
  const auto counted = output_counts(net, tokens);
  std::printf("counting run (47 tokens):\n  in : %s\n  out: %s  step=%s\n\n",
              format_sequence(tokens).c_str(),
              format_sequence(counted).c_str(),
              bench::mark(is_exact_step_output(counted)));

  const auto values = random_permutation(rng, 30);
  const auto sorted = comparator_output_counts(net, values);
  std::printf("sorting run (permutation of 0..29):\n  in : %s\n  out: %s  "
              "sorted=%s\n\n",
              format_sequence(values).c_str(),
              format_sequence(sorted).c_str(),
              bench::mark(is_sorted_descending(sorted)));
}

void BM_CountMode(benchmark::State& state) {
  const Network net = make_l_network({2, 3, 5});
  std::mt19937_64 rng(1);
  const auto in = random_count_vector(rng, 30, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(output_counts(net, in));
  }
}
BENCHMARK(BM_CountMode);

void BM_SortMode(benchmark::State& state) {
  const Network net = make_l_network({2, 3, 5});
  std::mt19937_64 rng(2);
  const auto in = random_permutation(rng, 30);
  for (auto _ : state) {
    benchmark::DoNotOptimize(comparator_output_counts(net, in));
  }
}
BENCHMARK(BM_SortMode);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
