// E9 — §4.3 / §4.3.1 ablation: the four staircase-merger variants. Depth
// table (naive d+6 / capped d+9 vs optimized 2d+1 / d+3) plus gate-cost
// comparison, then timed construction and evaluation.
#include <benchmark/benchmark.h>

#include <random>

#include "bench_common.h"
#include "core/counting_network.h"
#include "core/staircase_merger.h"
#include "seq/generators.h"
#include "sim/count_sim.h"

namespace {

using namespace scn;

constexpr StaircaseVariant kVariants[] = {
    StaircaseVariant::kTwoMerger, StaircaseVariant::kTwoMergerCapped,
    StaircaseVariant::kRebalanceCount, StaircaseVariant::kRebalanceBitonic};

void print_table() {
  bench::print_header(
      "E9  Staircase-merger ablation (base d = 1)",
      "naive: d+6 (d+9 capped); optimized: 2d+1 (count) / d+3 (bitonic)");
  std::printf("%-20s %6s %7s %9s %9s %7s %10s\n", "variant", "r,p,q",
              "formula", "measured", "maxgate", "gates", "endpoints");
  bench::print_row_rule();
  for (const auto& [r, p, q] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{4, 3, 3},
        {5, 3, 3},
        {8, 4, 4},
        {3, 5, 5}}) {
    for (const StaircaseVariant v : kVariants) {
      const Network net =
          make_staircase_merger_network(r, p, q, single_balancer_base(), v);
      std::printf("%-20s %zu,%zu,%zu %7zu %9u %9u %7zu %10zu\n", to_string(v),
                  r, p, q, staircase_depth_formula(v, 1, r), net.depth(),
                  net.max_gate_width(), net.gate_count(),
                  net.wire_endpoint_count());
    }
    bench::print_row_rule();
  }
  std::printf("\n");
}

void BM_StaircaseEval(benchmark::State& state) {
  const auto variant = kVariants[static_cast<std::size_t>(state.range(0))];
  const std::size_t r = 8, p = 4, q = 4;
  const Network net =
      make_staircase_merger_network(r, p, q, single_balancer_base(), variant);
  std::mt19937_64 rng(3);
  const auto family = random_staircase_family(rng, q, r * p,
                                              static_cast<Count>(p), 200);
  std::vector<Count> in;
  for (const auto& x : family) in.insert(in.end(), x.begin(), x.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(output_counts(net, in));
  }
  state.SetLabel(to_string(variant));
}
BENCHMARK(BM_StaircaseEval)->DenseRange(0, 3);

void BM_StaircaseBuild(benchmark::State& state) {
  const auto variant = kVariants[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        make_staircase_merger_network(8, 4, 4, single_balancer_base(), variant)
            .gate_count());
  }
  state.SetLabel(to_string(variant));
}
BENCHMARK(BM_StaircaseBuild)->DenseRange(0, 3);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
