// Pipelined (hardware-style) evaluation: latency = depth cycles, steady-
// state throughput = one width-w batch per cycle. This is the regime where
// the paper's shallow networks from wide comparators pay off directly —
// the table shows cycles for 1 batch vs 256 batches across the family.
#include <benchmark/benchmark.h>

#include <random>

#include "baseline/batcher.h"
#include "bench_common.h"
#include "core/factorization.h"
#include "core/k_network.h"
#include "core/l_network.h"
#include "seq/generators.h"
#include "sim/pipeline_sim.h"

namespace {

using namespace scn;

void print_table() {
  bench::print_header(
      "Pipelined evaluation at width 64 (cycles)",
      "latency = depth; steady-state amortized cycles/batch -> 1 "
      "independently of depth");
  std::printf("%-12s %7s %12s %14s %18s\n", "network", "depth",
              "1 batch", "256 batches", "amortized/batch");
  bench::print_row_rule();
  std::mt19937_64 rng(1);
  for (const auto& [name, net] :
       {std::pair<const char*, Network>{"K(8x8)", make_k_network({8, 8})},
        {"K(4x4x4)", make_k_network({4, 4, 4})},
        {"K(2^6)", make_k_network({2, 2, 2, 2, 2, 2})},
        {"L(4x4x4)", make_l_network({4, 4, 4})},
        {"batcher64", make_batcher_network(64)}}) {
    const PipelineSimulator pipe(net);
    std::vector<std::vector<Count>> one = {random_permutation(rng, 64)};
    std::vector<std::vector<Count>> many;
    for (int i = 0; i < 256; ++i) many.push_back(random_permutation(rng, 64));
    const auto r1 = pipe.run_batches(one);
    const auto r256 = pipe.run_batches(many);
    std::printf("%-12s %7u %12llu %14llu %18.3f\n", name, net.depth(),
                static_cast<unsigned long long>(r1.cycles),
                static_cast<unsigned long long>(r256.cycles),
                static_cast<double>(r256.cycles) / 256.0);
  }
  std::printf("\n");
}

void BM_PipelineBatches(benchmark::State& state) {
  const Network net = make_k_network({4, 4, 4});
  const PipelineSimulator pipe(net);
  std::mt19937_64 rng(2);
  std::vector<std::vector<Count>> batches;
  for (long i = 0; i < state.range(0); ++i) {
    batches.push_back(random_permutation(rng, 64));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipe.run_batches(batches).cycles);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 64);
}
BENCHMARK(BM_PipelineBatches)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
