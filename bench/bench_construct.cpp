// E-CONSTRUCT — construction throughput and the module cache.
//
// The Module IR interns every sub-network template (T, D, S, M, C, R) the
// constructions instantiate, so building L(w) decomposes into one cold
// template build per distinct parameterization plus flat gate stamping.
// This harness measures, for L across widths:
//
//   imperative  interning disabled: the original recursive build
//   cold        interning enabled, cache cleared first: template builds +
//               stamping (what the first construction in a process pays)
//   warm        interning enabled, templates resident: pure stamping
//
// Each phase runs against its own private scn::Runtime, so the numbers are
// order-independent: nothing this process built earlier (and nothing a
// phase builds) leaks warm templates into another phase's cache.
//
// The preamble emits BENCH_construct.json and the process exits non-zero
// if warm construction is not at least kMinWarmSpeedup x faster than the
// imperative path at every width — CI runs this binary with
// --benchmark_filter=^$ as a construction-time regression gate, mirroring
// the bench_passes depth gate.
#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/factorization.h"
#include "core/k_network.h"
#include "core/l_network.h"
#include "core/module.h"
#include "net/serialize.h"
#include "runtime/runtime.h"

namespace {

using namespace scn;

// Interning must never make construction slower; in practice warm builds
// are an order of magnitude faster, so a shortfall below this factor means
// the stamp path regressed.
constexpr double kMinWarmSpeedup = 1.5;

// Construction timings amortize less than throughput loops; take two
// extra reps over the shared default.
double best_time(const std::function<void()>& fn) {
  return bench::best_time(fn, 5);
}

struct Measurement {
  std::string label;
  std::size_t width = 0;
  std::size_t gates = 0;
  std::uint32_t depth = 0;
  double imperative_s = 0;  // module cache disabled
  double cold_s = 0;        // cache enabled, cleared before the build
  double warm_s = 0;        // cache enabled, templates resident
  std::size_t templates = 0;      // interned entries after a cold build
  std::size_t template_bytes = 0;  // their storage footprint
  bool identical = false;  // stamped output == imperative output
};

// Brace-initializing a subset of Runtime::Options fields trips
// -Wmissing-field-initializers under -Wextra; build the struct explicitly.
Runtime::Options module_cache_options(bool enabled) {
  Runtime::Options options;
  options.module_cache = enabled;
  return options;
}

Measurement measure(const std::vector<std::size_t>& factors) {
  Measurement m;
  m.label = "L(" + format_factors(factors) + ")";

  // Fresh Runtimes per phase: the imperative phase never interns, the cold
  // phase starts from an empty cache on every rep, and the warm phase is
  // warmed by exactly one build — regardless of what ran before.
  Runtime imperative_rt(module_cache_options(false));
  const Network imperative_net = make_l_network(factors, imperative_rt);
  m.imperative_s = best_time([&] {
    benchmark::DoNotOptimize(make_l_network(factors, imperative_rt));
  });
  m.width = imperative_net.width();
  m.gates = imperative_net.gate_count();
  m.depth = imperative_net.depth();

  Runtime cold_rt(module_cache_options(true));
  m.cold_s = best_time([&] {
    cold_rt.module_cache().clear();
    benchmark::DoNotOptimize(make_l_network(factors, cold_rt));
  });

  Runtime warm_rt(module_cache_options(true));
  const Network warm_net =
      make_l_network(factors, warm_rt);  // leave templates hot
  const ModuleCacheStats stats = warm_rt.module_cache().stats();
  m.templates = stats.entries;
  m.template_bytes = stats.bytes;
  m.warm_s = best_time([&] {
    benchmark::DoNotOptimize(make_l_network(factors, warm_rt));
  });
  m.identical =
      serialize_network(warm_net) == serialize_network(imperative_net);
  return m;
}

bool warm_ok(const Measurement& m) {
  return m.identical && m.imperative_s >= kMinWarmSpeedup * m.warm_s;
}

void emit_report(const std::vector<Measurement>& ms) {
  bench::print_header(
      "E-CONSTRUCT  Module cache construction throughput",
      "warm (stamped) builds of L(w) vs the imperative recursive path");
  std::printf("%-12s %5s %6s %4s | %10s %10s %10s | %6s %9s | %6s\n",
              "network", "w", "gates", "d", "imper (us)", "cold (us)",
              "warm (us)", "tmpls", "bytes", "x");
  bench::print_row_rule();
  bench::JsonReport report("BENCH_construct.json",
                           "module_cache_construction");
  bool all_pass = true;
  for (const Measurement& m : ms) {
    const bool pass = warm_ok(m);
    all_pass = all_pass && pass;
    const double speedup = m.imperative_s / m.warm_s;
    std::printf(
        "%-12s %5zu %6zu %4u | %10.1f %10.1f %10.1f | %6zu %9zu | %5.1fx %s\n",
        m.label.c_str(), m.width, m.gates, m.depth, m.imperative_s * 1e6,
        m.cold_s * 1e6, m.warm_s * 1e6, m.templates, m.template_bytes,
        speedup, bench::mark(pass));
    report.begin_row();
    report.kv("network", m.label);
    report.kv("width", static_cast<std::uint64_t>(m.width));
    report.kv("gates", static_cast<std::uint64_t>(m.gates));
    report.kv("depth", static_cast<std::uint64_t>(m.depth));
    report.kv("imperative_us", m.imperative_s * 1e6);
    report.kv("cold_us", m.cold_s * 1e6);
    report.kv("warm_us", m.warm_s * 1e6);
    report.kv("templates", static_cast<std::uint64_t>(m.templates));
    report.kv("template_bytes",
              static_cast<std::uint64_t>(m.template_bytes));
    report.kv("min_warm_speedup", kMinWarmSpeedup);
    report.kv("warm_speedup", speedup);
    report.kv("cold_overhead", m.cold_s / m.imperative_s);
    report.kv("identical", m.identical);
    report.kv("pass", pass);
    report.end_row();
  }
  report.finish(all_pass);
  std::printf("\n");
}

// --- google-benchmark timing loops -----------------------------------

void BM_ConstructL720Warm(benchmark::State& state) {
  Runtime rt(module_cache_options(true));
  (void)make_l_network({8, 9, 10}, rt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_l_network({8, 9, 10}, rt));
  }
}
BENCHMARK(BM_ConstructL720Warm)->Unit(benchmark::kMillisecond);

void BM_ConstructL720Imperative(benchmark::State& state) {
  Runtime rt(module_cache_options(false));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_l_network({8, 9, 10}, rt));
  }
}
BENCHMARK(BM_ConstructL720Imperative)->Unit(benchmark::kMillisecond);

void BM_ConstructK64Warm(benchmark::State& state) {
  Runtime rt(module_cache_options(true));
  (void)make_k_network({4, 4, 4}, rt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_k_network({4, 4, 4}, rt));
  }
}
BENCHMARK(BM_ConstructK64Warm)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::vector<Measurement> ms;
  ms.push_back(measure({2, 3, 4}));    // w = 24
  ms.push_back(measure({4, 4, 4}));    // w = 64
  ms.push_back(measure({4, 5, 7}));    // w = 140
  ms.push_back(measure({6, 8, 9}));    // w = 432
  ms.push_back(measure({8, 9, 10}));   // w = 720
  emit_report(ms);
  bool all_ok = true;
  for (const Measurement& m : ms) all_ok = all_ok && warm_ok(m);
  if (!all_ok) {
    std::fprintf(stderr,
                 "CONSTRUCTION REGRESSION: warm (stamped) builds are not "
                 "%.1fx faster than the imperative path, or outputs "
                 "diverged\n",
                 kMinWarmSpeedup);
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
