// E-DEPTH-OPT — what the peephole-optimal pass wins on the paper's own
// constructions, proven as it is measured.
//
// For a grid of K and L instances this records the depth curve
//   construction -> default pipeline -> optimal pipeline
// next to the paper's closed-form depth bound (Prop 6 / Theorem 7), plus
// the rewrite count the peephole reports. The preamble emits
// BENCH_depth_opt.json and the process exit code is a CI gate:
//
//   * no instance may regress: depth(optimal) <= depth(default) <= built;
//   * at least one L instance must come in strictly BELOW both the default
//     pipeline and the paper's construction bound (the measured win the
//     optimality map exists for);
//   * every rewritten network must still sort — exhaustively by the 0-1
//     principle up to width 20, by randomized agreement with the original
//     above — and produce bit-identical outputs on every registered
//     engine backend.
//
// CI runs this with --benchmark_filter=^$ (gate only, no timing loops).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>
#include <vector>

#include "bench_common.h"
#include "core/factorization.h"
#include "core/k_network.h"
#include "core/l_network.h"
#include "engine/backend.h"
#include "engine/execution_plan.h"
#include "opt/pass.h"
#include "runtime/runtime.h"
#include "seq/generators.h"
#include "sim/comparator_sim.h"
#include "verify/fast_zero_one.h"

namespace {

using namespace scn;

constexpr std::size_t kExhaustiveCap = 20;

struct Measurement {
  std::string network;
  std::size_t width;
  std::size_t paper_bound;      // Prop 6 / Thm 7 closed form
  std::uint32_t depth_built;    // as constructed
  std::uint32_t depth_default;  // after the default pipeline
  std::uint32_t depth_optimal;  // after the optimal pipeline
  std::size_t gates_built;
  std::size_t gates_optimal;
  std::size_t rewrites;         // peephole-optimal rewrite count
  bool verified;                // rewritten network still sorts
  bool backends_agree;          // bit-identical across engine backends
};

/// Rewritten network still computes the same sort. Exhaustive (0-1
/// principle, bit-sliced) up to kExhaustiveCap wires; randomized
/// per-gate-interpreter agreement with the original above that.
bool verify_equivalent(const Network& original, const Network& optimized) {
  if (optimized.width() <= kExhaustiveCap) {
    return fast_verify_sorting_exhaustive(optimized).ok;
  }
  std::mt19937_64 rng(99);
  for (int t = 0; t < 64; ++t) {
    const auto in = random_count_vector(rng, original.width(), 70);
    if (comparator_output_counts(original, in) !=
        comparator_output_counts(optimized, in)) {
      return false;
    }
  }
  return true;
}

/// Every registered backend sorts a 256-vector batch of the optimized
/// plan bit-identically to the scalar reference.
bool backends_bit_identical(const Network& optimized) {
  Runtime rt;
  const ExecutionPlan plan = compile_plan(optimized);
  const auto inputs = bench::random_inputs(optimized.width(), 256, 4321);
  const auto reference =
      engine::sort_batch(plan, inputs, rt, EngineBackend::kScalar);
  for (const EngineBackend which : engine::registered_backends()) {
    if (engine::sort_batch(plan, inputs, rt, which) != reference) {
      return false;
    }
  }
  return true;
}

Measurement measure(const char* family,
                    const std::vector<std::size_t>& factors) {
  Runtime rt;
  const bool is_l = family[0] == 'L';
  const Network net =
      is_l ? make_l_network(factors, rt) : make_k_network(factors, rt);
  Measurement m{};
  m.network = std::string(family) + "(" + format_factors(factors) + ")";
  m.width = net.width();
  m.paper_bound =
      is_l ? l_depth_bound(factors.size()) : k_depth_formula(factors.size());
  m.depth_built = net.depth();
  m.gates_built = net.gate_count();

  const PipelineResult dflt = optimize_network(net, PassLevel::kDefault);
  m.depth_default = dflt.network.depth();
  const PipelineResult opt = optimize_network(net, PassLevel::kOptimal);
  m.depth_optimal = opt.network.depth();
  m.gates_optimal = opt.network.gate_count();
  for (const PassStats& s : opt.passes) {
    if (s.name == "peephole-optimal") m.rewrites += s.rewrites;
  }
  m.verified = verify_equivalent(net, opt.network);
  m.backends_agree = backends_bit_identical(opt.network);
  return m;
}

/// Per-instance gate: monotone depth curve and a sound rewrite.
bool row_ok(const Measurement& m) {
  return m.depth_optimal <= m.depth_default &&
         m.depth_default <= m.depth_built && m.verified && m.backends_agree;
}

/// The headline win: strictly below the default pipeline AND the paper's
/// construction bound on the same instance.
bool is_win(const Measurement& m) {
  return m.depth_optimal < m.depth_default &&
         m.paper_bound > m.depth_optimal;
}

int run_gate() {
  std::vector<Measurement> ms;
  ms.push_back(measure("K", {2, 3}));
  ms.push_back(measure("K", {2, 2, 2}));
  ms.push_back(measure("K", {2, 2, 3}));
  ms.push_back(measure("K", {4, 4}));
  ms.push_back(measure("L", {2, 2}));
  ms.push_back(measure("L", {2, 3}));
  ms.push_back(measure("L", {3, 3}));
  ms.push_back(measure("L", {2, 2, 2}));
  ms.push_back(measure("L", {2, 2, 2, 2}));
  ms.push_back(measure("L", {2, 2, 2, 2, 2}));

  bench::print_header(
      "E-DEPTH-OPT  Peephole-optimal depth wins on K/L instances",
      "optimal <= default everywhere; L instances beat the construction");
  std::printf("%-16s %5s %6s | %6s %6s %6s | %4s %4s %4s\n", "network", "w",
              "bound", "built", "dflt", "opt", "rw", "ver", "eng");
  bench::print_row_rule();

  bench::JsonReport report("BENCH_depth_opt.json", "depth_opt");
  bool all_ok = true;
  bool any_win = false;
  for (const Measurement& m : ms) {
    const bool ok = row_ok(m);
    all_ok = all_ok && ok;
    any_win = any_win || is_win(m);
    std::printf("%-16s %5zu %6zu | %6u %6u %6u | %4zu %4s %4s %s\n",
                m.network.c_str(), m.width, m.paper_bound, m.depth_built,
                m.depth_default, m.depth_optimal, m.rewrites,
                m.verified ? "ok" : "NO", m.backends_agree ? "ok" : "NO",
                bench::mark(ok));
    report.begin_row();
    report.kv("network", m.network);
    report.kv("width", static_cast<std::uint64_t>(m.width));
    report.kv("paper_bound", static_cast<std::uint64_t>(m.paper_bound));
    report.kv("depth_built", static_cast<std::uint64_t>(m.depth_built));
    report.kv("depth_default", static_cast<std::uint64_t>(m.depth_default));
    report.kv("depth_optimal", static_cast<std::uint64_t>(m.depth_optimal));
    report.kv("gates_built", static_cast<std::uint64_t>(m.gates_built));
    report.kv("gates_optimal", static_cast<std::uint64_t>(m.gates_optimal));
    report.kv("rewrites", static_cast<std::uint64_t>(m.rewrites));
    report.kv("layers_removed_vs_default",
              static_cast<std::uint64_t>(m.depth_default - m.depth_optimal));
    report.kv("verified", m.verified);
    report.kv("backends_agree", m.backends_agree);
    report.kv("win", is_win(m));
    report.end_row();
  }
  const bool pass = all_ok && any_win;
  report.finish(pass);
  if (!all_ok) {
    std::fprintf(stderr, "DEPTH-OPT GATE: regression or unsound rewrite on "
                         "at least one instance\n");
    return 1;
  }
  if (!any_win) {
    std::fprintf(stderr, "DEPTH-OPT GATE: no instance improved on both the "
                         "default pipeline and the paper bound\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int gate = run_gate();
  if (gate != 0) return gate;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
