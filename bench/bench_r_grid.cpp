// E4 — §5.3: depth(R(p, q)) <= 16 and every balancer <= max(p, q), over the
// whole (p, q) grid. Prints a depth heat table and the distribution of
// depths, then times R construction.
#include <benchmark/benchmark.h>

#include <array>

#include "bench_common.h"
#include "core/r_network.h"

namespace {

using namespace scn;

void print_table() {
  bench::print_header("E4  R(p, q) constant-depth grid",
                      "depth(R(p,q)) <= 16; balancers <= max(p,q)");
  std::printf("depth of R(p, q) for p (rows), q (cols) in 2..20:\n     ");
  for (std::size_t q = 2; q <= 20; ++q) std::printf("%3zu", q);
  std::printf("\n");
  bench::print_row_rule();
  std::array<std::size_t, kRDepthBound + 1> histogram{};
  bool all_ok = true;
  for (std::size_t p = 2; p <= 20; ++p) {
    std::printf("p=%2zu ", p);
    for (std::size_t q = 2; q <= 20; ++q) {
      const Network net = make_r_network(p, q);
      std::printf("%3u", net.depth());
      if (net.depth() > kRDepthBound ||
          net.max_gate_width() > std::max(p, q)) {
        all_ok = false;
      }
      histogram[std::min<std::size_t>(net.depth(), kRDepthBound)] += 1;
    }
    std::printf("\n");
  }
  std::printf("\ndepth histogram (2..20 grid): ");
  for (std::size_t d = 0; d <= kRDepthBound; ++d) {
    if (histogram[d]) std::printf("d%zu:%zu ", d, histogram[d]);
  }
  std::printf("\nall structural bounds: %s\n\n", bench::mark(all_ok));
}

void BM_BuildR(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const auto q = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    const Network net = make_r_network(p, q);
    benchmark::DoNotOptimize(net.gate_count());
  }
  state.counters["width"] = static_cast<double>(p * q);
}
BENCHMARK(BM_BuildR)
    ->Args({4, 4})
    ->Args({8, 8})
    ->Args({16, 16})
    ->Args({32, 32})
    ->Args({64, 64})
    ->Args({31, 17});

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
