// E-ENG — compiled batch engine vs the per-gate interpreter.
//
// Sorts a large batch of random vectors through K / L / bitonic networks
// four ways: per-gate interpreter (apply_comparators, one vector at a
// time), compiled plan scalar, compiled plan SoA batch, and the SoA batch
// sharded over the shared ThreadPool. The headline number is vectors/sec;
// the acceptance bar for the engine is >= 3x interpreter throughput for the
// single-threaded SoA batch on a width >= 24 network.
//
// Besides the google-benchmark timings, the preamble emits
// BENCH_engine.json — a machine-readable report of the measured
// throughputs and speedups per network.
#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <random>

#include "baseline/bitonic.h"
#include "bench_common.h"
#include "core/k_network.h"
#include "core/l_network.h"
#include "engine/batch_engine.h"
#include "engine/execution_plan.h"
#include "perf/thread_pool.h"
#include "seq/generators.h"
#include "sim/comparator_sim.h"

namespace {

using namespace scn;

constexpr std::size_t kBatch = 4096;

std::vector<std::vector<Count>> make_inputs(std::size_t width,
                                            std::size_t n) {
  std::mt19937_64 rng(99);
  std::vector<std::vector<Count>> inputs;
  inputs.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    inputs.push_back(random_count_vector(rng, width, 1000));
  }
  return inputs;
}

double time_once(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best-of-3 wall time for `fn`, in seconds.
double best_time(const std::function<void()>& fn) {
  double best = time_once(fn);
  for (int rep = 0; rep < 2; ++rep) best = std::min(best, time_once(fn));
  return best;
}

struct Measurement {
  const char* network;
  std::size_t width;
  std::uint32_t depth;
  double interp_vps;    // vectors/sec, per-gate interpreter
  double scalar_vps;    // plan, scalar tier
  double batch_vps;     // plan, SoA batch tier
  double threaded_vps;  // plan, SoA batch over the shared pool
};

Measurement measure(const char* name, const Network& net) {
  const ExecutionPlan plan = compile_plan(net);
  const auto inputs = make_inputs(net.width(), kBatch);
  const auto n = static_cast<double>(kBatch);

  const double t_interp = best_time([&] {
    for (const auto& in : inputs) {
      benchmark::DoNotOptimize(comparator_output_counts(net, in));
    }
  });
  const double t_scalar = best_time([&] {
    for (const auto& in : inputs) {
      benchmark::DoNotOptimize(plan_comparator_output(plan, in));
    }
  });
  const double t_batch =
      best_time([&] { benchmark::DoNotOptimize(plan_sort_batch(plan, inputs)); });
  const double t_threaded = best_time([&] {
    benchmark::DoNotOptimize(
        plan_sort_batch(plan, inputs, &ThreadPool::shared()));
  });

  return Measurement{name,         net.width(),   net.depth(),
                     n / t_interp, n / t_scalar,  n / t_batch,
                     n / t_threaded};
}

void emit_report(const std::vector<Measurement>& ms) {
  bench::print_header(
      "E-ENG  Compiled batch engine vs per-gate interpreter",
      "layer-scheduled SoA batches >= 3x interpreter throughput (w >= 24)");
  std::printf("%-14s %5s %5s %12s %12s %12s %12s %8s\n", "network", "w", "d",
              "interp v/s", "scalar v/s", "batch v/s", "threaded v/s",
              "batch/x");
  bench::print_row_rule();
  bench::JsonReport report("BENCH_engine.json", "engine_batch");
  bool all_pass = true;
  for (const Measurement& m : ms) {
    const double speedup = m.batch_vps / m.interp_vps;
    const bool pass = speedup >= 3.0;
    all_pass = all_pass && pass;
    std::printf("%-14s %5zu %5u %12.0f %12.0f %12.0f %12.0f %7.2fx %s\n",
                m.network, m.width, m.depth, m.interp_vps, m.scalar_vps,
                m.batch_vps, m.threaded_vps, speedup, bench::mark(pass));
    report.begin_row();
    report.kv("network", m.network);
    report.kv("width", static_cast<std::uint64_t>(m.width));
    report.kv("depth", static_cast<std::uint64_t>(m.depth));
    report.kv("batch_size", static_cast<std::uint64_t>(kBatch));
    report.kv("interpreter_vps", m.interp_vps);
    report.kv("plan_scalar_vps", m.scalar_vps);
    report.kv("plan_batch_vps", m.batch_vps);
    report.kv("plan_threaded_vps", m.threaded_vps);
    report.kv("batch_speedup", speedup);
    report.end_row();
  }
  report.finish(all_pass);
  std::printf("\n");
}

template <typename Runner>
void batch_bench(benchmark::State& state, const Network& net, Runner run) {
  const ExecutionPlan plan = compile_plan(net);
  const auto inputs = make_inputs(net.width(), kBatch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(net, plan, inputs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatch));
}

const Network& k64() {
  static const Network net = make_k_network({4, 4, 4});
  return net;
}

void BM_InterpreterK64(benchmark::State& state) {
  batch_bench(state, k64(),
              [](const Network& net, const ExecutionPlan&,
                 const std::vector<std::vector<Count>>& inputs) {
                std::vector<Count> last;
                for (const auto& in : inputs) {
                  last = comparator_output_counts(net, in);
                }
                return last;
              });
}
BENCHMARK(BM_InterpreterK64)->Unit(benchmark::kMillisecond);

void BM_PlanScalarK64(benchmark::State& state) {
  batch_bench(state, k64(),
              [](const Network&, const ExecutionPlan& plan,
                 const std::vector<std::vector<Count>>& inputs) {
                std::vector<Count> last;
                for (const auto& in : inputs) {
                  last = plan_comparator_output(plan, in);
                }
                return last;
              });
}
BENCHMARK(BM_PlanScalarK64)->Unit(benchmark::kMillisecond);

void BM_PlanBatchK64(benchmark::State& state) {
  batch_bench(state, k64(),
              [](const Network&, const ExecutionPlan& plan,
                 const std::vector<std::vector<Count>>& inputs) {
                return plan_sort_batch(plan, inputs);
              });
}
BENCHMARK(BM_PlanBatchK64)->Unit(benchmark::kMillisecond);

void BM_PlanThreadedK64(benchmark::State& state) {
  batch_bench(state, k64(),
              [](const Network&, const ExecutionPlan& plan,
                 const std::vector<std::vector<Count>>& inputs) {
                return plan_sort_batch(plan, inputs, &ThreadPool::shared());
              });
}
BENCHMARK(BM_PlanThreadedK64)->Unit(benchmark::kMillisecond);

void BM_PlanCountBatchK64(benchmark::State& state) {
  batch_bench(state, k64(),
              [](const Network&, const ExecutionPlan& plan,
                 const std::vector<std::vector<Count>>& inputs) {
                return plan_count_batch(plan, inputs);
              });
}
BENCHMARK(BM_PlanCountBatchK64)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::vector<Measurement> ms;
  ms.push_back(measure("K(4x4x4)", make_k_network({4, 4, 4})));
  ms.push_back(measure("K(2x3x4)", make_k_network({2, 3, 4})));
  ms.push_back(measure("L(4x4x4)", make_l_network({4, 4, 4})));
  ms.push_back(measure("bitonic32", make_bitonic_network(5)));
  emit_report(ms);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
