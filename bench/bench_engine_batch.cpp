// E-ENG — compiled batch engine vs the per-gate interpreter.
//
// Sorts a large batch of random vectors through K / L / bitonic networks
// four ways: per-gate interpreter (apply_comparators, one vector at a
// time), compiled plan scalar, compiled plan SoA batch, and the SoA batch
// sharded over the pool. The headline number is vectors/sec; the
// acceptance bar for the engine is >= 3x interpreter throughput for the
// single-threaded SoA batch on a width >= 24 network.
//
// The backend tiers are measured through tune::ExperimentManager — the
// same declarative sweep `scnet_cli tune` runs — with one cell per
// (network, backend): each cell gets a fresh private Runtime, a time
// guard and best-of-reps timing. Only the interpreter row is measured
// locally (it is not an engine backend). The sweep runs with
// parallelism 1: rows feed an acceptance gate, so no sibling cell may
// perturb a measurement.
//
// Besides the google-benchmark timings, the preamble emits
// BENCH_engine.json — a machine-readable report of the measured
// throughputs and speedups per network.
#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "baseline/bitonic.h"
#include "bench_common.h"
#include "core/k_network.h"
#include "core/l_network.h"
#include "engine/batch_engine.h"
#include "engine/execution_plan.h"
#include "perf/thread_pool.h"
#include "sim/comparator_sim.h"
#include "tune/experiment.h"

namespace {

using namespace scn;

constexpr std::size_t kBatch = 4096;

/// The backend tiers one sweep covers; the interpreter is measured apart.
const tune::ExperimentConfig& sweep_config() {
  static const tune::ExperimentConfig config = [] {
    tune::ExperimentConfig c;
    c.name = "engine_batch";
    c.axes.networks = {
        tune::NetworkSpec::member(NetworkKind::kK, {4, 4, 4}),
        tune::NetworkSpec::member(NetworkKind::kK, {2, 3, 4}),
        tune::NetworkSpec::member(NetworkKind::kL, {4, 4, 4}),
        tune::NetworkSpec::named(
            "bitonic32", [](Runtime&) { return make_bitonic_network(5); }),
    };
    c.axes.pass_levels = {PassLevel::kNone};  // measure the raw networks
    c.axes.backends = {EngineBackend::kScalar, EngineBackend::kBatch,
                       EngineBackend::kThreaded};
    c.axes.batch_sizes = {kBatch};
    c.reps = 3;
    c.max_cell_seconds = 5.0;  // roomy: rows feed the acceptance gate
    c.parallelism = 1;
    return c;
  }();
  return config;
}

struct Measurement {
  std::string network;
  std::size_t width = 0;
  std::uint32_t depth = 0;
  double interp_vps = 0;    // vectors/sec, per-gate interpreter
  double scalar_vps = 0;    // plan, scalar tier
  double batch_vps = 0;     // plan, SoA batch tier
  double threaded_vps = 0;  // plan, SoA batch over the pool
};

std::vector<Measurement> measure_all() {
  tune::ExperimentManager manager(sweep_config());
  const std::vector<tune::CellResult> results = manager.run();

  // One Measurement per network, in axes order; cells fill the tier
  // columns, the interpreter column is measured here (best-of-3, same
  // rep discipline via bench::best_time).
  std::vector<Measurement> ms;
  std::map<std::string, std::size_t> index;
  for (const tune::CellResult& r : results) {
    if (!r.ok) {
      std::fprintf(stderr, "cell %s failed: %s\n", r.cell.label().c_str(),
                   r.error.c_str());
      continue;
    }
    const std::string& name = r.cell.network.name;
    if (index.find(name) == index.end()) {
      index[name] = ms.size();
      Measurement m;
      m.network = name;
      m.width = r.width;
      m.depth = r.depth;
      ms.push_back(std::move(m));
    }
    Measurement& m = ms[index[name]];
    switch (r.cell.backend) {
      case EngineBackend::kScalar: m.scalar_vps = r.vectors_per_sec; break;
      case EngineBackend::kBatch: m.batch_vps = r.vectors_per_sec; break;
      case EngineBackend::kThreaded:
        m.threaded_vps = r.vectors_per_sec;
        break;
      default: break;
    }
  }
  for (const tune::NetworkSpec& spec : sweep_config().axes.networks) {
    Runtime rt;
    const Network net =
        spec.is_family()
            ? (spec.kind == NetworkKind::kK
                   ? make_k_network(spec.factors, rt)
                   : make_l_network(spec.factors, rt))
            : spec.build(rt);
    const auto inputs = bench::random_inputs(net.width(), kBatch, 99);
    const double t = bench::best_time([&] {
      for (const auto& in : inputs) {
        benchmark::DoNotOptimize(comparator_output_counts(net, in));
      }
    });
    ms[index[spec.name]].interp_vps = static_cast<double>(kBatch) / t;
  }
  return ms;
}

void emit_report(const std::vector<Measurement>& ms) {
  bench::print_header(
      "E-ENG  Compiled batch engine vs per-gate interpreter",
      "layer-scheduled SoA batches >= 3x interpreter throughput (w >= 24)");
  std::printf("%-14s %5s %5s %12s %12s %12s %12s %8s\n", "network", "w", "d",
              "interp v/s", "scalar v/s", "batch v/s", "threaded v/s",
              "batch/x");
  bench::print_row_rule();
  bench::JsonReport report("BENCH_engine.json", "engine_batch");
  bool all_pass = true;
  for (const Measurement& m : ms) {
    const double speedup = m.batch_vps / m.interp_vps;
    const bool pass = speedup >= 3.0;
    all_pass = all_pass && pass;
    std::printf("%-14s %5zu %5u %12.0f %12.0f %12.0f %12.0f %7.2fx %s\n",
                m.network.c_str(), m.width, m.depth, m.interp_vps,
                m.scalar_vps, m.batch_vps, m.threaded_vps, speedup,
                bench::mark(pass));
    report.begin_row();
    report.kv("network", m.network);
    report.kv("width", static_cast<std::uint64_t>(m.width));
    report.kv("depth", static_cast<std::uint64_t>(m.depth));
    report.kv("batch_size", static_cast<std::uint64_t>(kBatch));
    report.kv("interpreter_vps", m.interp_vps);
    report.kv("plan_scalar_vps", m.scalar_vps);
    report.kv("plan_batch_vps", m.batch_vps);
    report.kv("plan_threaded_vps", m.threaded_vps);
    report.kv("batch_speedup", speedup);
    report.end_row();
  }
  report.finish(all_pass);
  std::printf("\n");
}

template <typename Runner>
void batch_bench(benchmark::State& state, const Network& net, Runner run) {
  const ExecutionPlan plan = compile_plan(net);
  const auto inputs = bench::random_inputs(net.width(), kBatch, 99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(net, plan, inputs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatch));
}

const Network& k64() {
  static const Network net = make_k_network({4, 4, 4});
  return net;
}

void BM_InterpreterK64(benchmark::State& state) {
  batch_bench(state, k64(),
              [](const Network& net, const ExecutionPlan&,
                 const std::vector<std::vector<Count>>& inputs) {
                std::vector<Count> last;
                for (const auto& in : inputs) {
                  last = comparator_output_counts(net, in);
                }
                return last;
              });
}
BENCHMARK(BM_InterpreterK64)->Unit(benchmark::kMillisecond);

void BM_PlanScalarK64(benchmark::State& state) {
  batch_bench(state, k64(),
              [](const Network&, const ExecutionPlan& plan,
                 const std::vector<std::vector<Count>>& inputs) {
                std::vector<Count> last;
                for (const auto& in : inputs) {
                  last = plan_comparator_output(plan, in);
                }
                return last;
              });
}
BENCHMARK(BM_PlanScalarK64)->Unit(benchmark::kMillisecond);

void BM_PlanBatchK64(benchmark::State& state) {
  batch_bench(state, k64(),
              [](const Network&, const ExecutionPlan& plan,
                 const std::vector<std::vector<Count>>& inputs) {
                return plan_sort_batch(plan, inputs);
              });
}
BENCHMARK(BM_PlanBatchK64)->Unit(benchmark::kMillisecond);

void BM_PlanThreadedK64(benchmark::State& state) {
  batch_bench(state, k64(),
              [](const Network&, const ExecutionPlan& plan,
                 const std::vector<std::vector<Count>>& inputs) {
                return plan_sort_batch(plan, inputs, &ThreadPool::shared());
              });
}
BENCHMARK(BM_PlanThreadedK64)->Unit(benchmark::kMillisecond);

void BM_PlanCountBatchK64(benchmark::State& state) {
  batch_bench(state, k64(),
              [](const Network&, const ExecutionPlan& plan,
                 const std::vector<std::vector<Count>>& inputs) {
                return plan_count_batch(plan, inputs);
              });
}
BENCHMARK(BM_PlanCountBatchK64)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  emit_report(measure_all());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
