// E-SIMD — explicit AVX2 kernels vs the auto-vectorized batch tier.
//
// Sweeps batch size x network x backend and reports sorted vectors/sec for
// every registered engine backend (engine/backend.h). The networks split
// into two regimes:
//
//   * width-2 dominated (bitonic, Batcher odd-even): every gate is a pair
//     compare-exchange, exactly what the simd backend's hand-written
//     AVX2 min/max kernels cover — this is where explicit vectorization
//     must beat the compiler's auto-vectorized batch tier;
//   * wide-gate heavy (K(4x4x4): 4-wide base balancers): the wide gates
//     run through the same scalar-per-lane code in both tiers, so simd
//     and batch should be near-identical — measured as a sanity check,
//     never gated.
//
// The sweep itself is a tune::ExperimentManager config — the declarative
// cross product (networks x backends x batch sizes) that `scnet_cli tune`
// also runs — executed with parallelism 1 because the rows feed an
// acceptance gate. Each cell gets a fresh private Runtime and best-of-reps
// timing under a time guard.
//
// Acceptance gate (exit 1 on failure): on every width-2-dominated network,
// the simd backend's best throughput across batch sizes is at least that
// of the batch backend (within a small tolerance for timer noise). The
// gate only arms when the AVX2 kernels are compiled in
// (engine::simd::compiled_in()); elsewhere the report is informational —
// the simd backend degrades to the scalar-kernel fallback there and parity
// is all that is expected.
//
// Emits BENCH_simd.json: one row per (network, batch_size) with the
// per-backend throughputs and the simd/batch ratio.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "baseline/batcher.h"
#include "baseline/bitonic.h"
#include "bench_common.h"
#include "core/cost_model.h"
#include "core/k_network.h"
#include "engine/backend.h"
#include "engine/execution_plan.h"
#include "engine/simd_kernels.h"
#include "runtime/runtime.h"
#include "tune/experiment.h"

namespace {

using namespace scn;

constexpr std::size_t kBatchSizes[] = {64, 256, 1024, 4096};

/// Networks under test; `gated` marks the width-2-dominated regime the
/// acceptance gate covers.
struct NetUnderTest {
  tune::NetworkSpec spec;
  bool width2_dominated;
};

std::vector<NetUnderTest> nets_under_test() {
  std::vector<NetUnderTest> nets;
  nets.push_back({tune::NetworkSpec::named(
                      "bitonic32",
                      [](Runtime&) { return make_bitonic_network(5); }),
                  true});
  nets.push_back({tune::NetworkSpec::named(
                      "batcher24",
                      [](Runtime&) { return make_batcher_network(24); }),
                  true});
  nets.push_back(
      {tune::NetworkSpec::member(NetworkKind::kK, {4, 4, 4}), false});
  return nets;
}

tune::ExperimentConfig sweep_config() {
  tune::ExperimentConfig c;
  c.name = "simd_backends";
  for (const NetUnderTest& n : nets_under_test()) {
    c.axes.networks.push_back(n.spec);
  }
  c.axes.pass_levels = {PassLevel::kNone};
  c.axes.backends = {};  // every registered backend
  c.axes.batch_sizes.assign(std::begin(kBatchSizes), std::end(kBatchSizes));
  c.reps = 3;
  c.max_cell_seconds = 5.0;
  c.parallelism = 1;  // rows feed the acceptance gate
  return c;
}

void backend_bench(benchmark::State& state, EngineBackend b) {
  static const Network net = make_bitonic_network(5);
  const ExecutionPlan plan = compile_plan(net);
  const auto inputs = bench::random_inputs(net.width(), 4096, 2024);
  Runtime rt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine::sort_batch(plan, inputs, rt, b));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}

void BM_BatchBitonic32(benchmark::State& state) {
  backend_bench(state, EngineBackend::kBatch);
}
BENCHMARK(BM_BatchBitonic32)->Unit(benchmark::kMillisecond);

void BM_SimdBitonic32(benchmark::State& state) {
  backend_bench(state, EngineBackend::kSimd);
}
BENCHMARK(BM_SimdBitonic32)->Unit(benchmark::kMillisecond);

void BM_ThreadedBitonic32(benchmark::State& state) {
  backend_bench(state, EngineBackend::kThreaded);
}
BENCHMARK(BM_ThreadedBitonic32)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool gated = engine::simd::compiled_in();
  bench::print_header(
      "E-SIMD  Explicit AVX2 kernels vs auto-vectorized batch tier",
      "simd >= batch vectors/sec on width-2-dominated plans (AVX2 hosts)");
  if (!gated) {
    std::printf("AVX2 kernels not compiled in: report is informational, "
                "the gate is off.\n");
  }

  tune::ExperimentManager manager(sweep_config());
  const std::vector<tune::CellResult> results = manager.run();

  // Regroup the flat cell list into (network, batch_size) rows with one
  // throughput column per backend.
  struct Row {
    double width2_fraction = 0.0;
    std::map<EngineBackend, double> vps;
  };
  std::map<std::string, std::map<std::size_t, Row>> rows;
  for (const tune::CellResult& r : results) {
    if (!r.ok) {
      std::fprintf(stderr, "cell %s failed: %s\n", r.cell.label().c_str(),
                   r.error.c_str());
      continue;
    }
    Row& row = rows[r.cell.network.name][r.cell.lanes];
    row.width2_fraction = r.width2_fraction;
    row.vps[r.cell.backend] = r.vectors_per_sec;
  }

  std::printf("%-11s %6s %6s %12s %12s %12s %12s %8s\n", "network", "B",
              "w2frac", "scalar v/s", "batch v/s", "simd v/s",
              "threaded v/s", "simd/x");
  bench::print_row_rule();

  bench::JsonReport report("BENCH_simd.json", "simd_backends");
  bool all_pass = true;
  for (const NetUnderTest& n : nets_under_test()) {
    double best_ratio = 0.0;
    for (const std::size_t batch_size : kBatchSizes) {
      const Row& row = rows[n.spec.name][batch_size];
      const auto vps = [&](EngineBackend b) {
        const auto it = row.vps.find(b);
        return it == row.vps.end() ? 0.0 : it->second;
      };
      const double batch_vps = vps(EngineBackend::kBatch);
      const double simd_vps = vps(EngineBackend::kSimd);
      const double ratio = batch_vps > 0 ? simd_vps / batch_vps : 0.0;
      best_ratio = std::max(best_ratio, ratio);
      std::printf("%-11s %6zu %6.2f %12.0f %12.0f %12.0f %12.0f %7.2fx\n",
                  n.spec.name.c_str(), batch_size, row.width2_fraction,
                  vps(EngineBackend::kScalar), batch_vps, simd_vps,
                  vps(EngineBackend::kThreaded), ratio);
      report.begin_row();
      report.kv("network", n.spec.name);
      report.kv("batch_size", static_cast<std::uint64_t>(batch_size));
      report.kv("width2_fraction", row.width2_fraction);
      report.kv("scalar_vps", vps(EngineBackend::kScalar));
      report.kv("batch_vps", batch_vps);
      report.kv("simd_vps", simd_vps);
      report.kv("threaded_vps", vps(EngineBackend::kThreaded));
      report.kv("simd_over_batch", ratio);
      report.kv("gated", gated && n.width2_dominated);
      report.end_row();
    }
    if (n.width2_dominated) {
      // Gate on the best batch size: the claim is "the explicit kernels
      // win where they apply", not "they win at every sweep point" —
      // tiny batches are dominated by pack/unpack in both tiers. 5%
      // tolerance absorbs timer noise on shared CI runners.
      const bool pass = !gated || best_ratio >= 0.95;
      all_pass = all_pass && pass;
      std::printf("%-11s best simd/batch %.2fx %s\n", n.spec.name.c_str(),
                  best_ratio, gated ? bench::mark(pass) : "(info)");
    }
    bench::print_row_rule();
  }
  const bool ok = report.finish(all_pass);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return ok ? 0 : 1;
}
