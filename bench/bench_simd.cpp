// E-SIMD — explicit AVX2 kernels vs the auto-vectorized batch tier.
//
// Sweeps batch size x network x backend and reports sorted vectors/sec for
// every registered engine backend (engine/backend.h). The networks split
// into two regimes:
//
//   * width-2 dominated (bitonic, Batcher odd-even): every gate is a pair
//     compare-exchange, exactly what the simd backend's hand-written
//     AVX2 min/max kernels cover — this is where explicit vectorization
//     must beat the compiler's auto-vectorized batch tier;
//   * wide-gate heavy (K(4x4x4): 4-wide base balancers): the wide gates
//     run through the same scalar-per-lane code in both tiers, so simd
//     and batch should be near-identical — measured as a sanity check,
//     never gated.
//
// Acceptance gate (exit 1 on failure): on every width-2-dominated network,
// the simd backend's best throughput across batch sizes is at least that
// of the batch backend (within a small tolerance for timer noise). The
// gate only arms when the AVX2 kernels are compiled in
// (engine::simd::compiled_in()); elsewhere the report is informational —
// the simd backend degrades to the scalar-kernel fallback there and parity
// is all that is expected.
//
// Emits BENCH_simd.json: one row per (network, batch_size) with the
// per-backend throughputs and the simd/batch ratio.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <random>
#include <vector>

#include "baseline/batcher.h"
#include "baseline/bitonic.h"
#include "bench_common.h"
#include "core/cost_model.h"
#include "core/k_network.h"
#include "engine/backend.h"
#include "engine/execution_plan.h"
#include "engine/simd_kernels.h"
#include "runtime/runtime.h"
#include "seq/generators.h"

namespace {

using namespace scn;

constexpr std::size_t kBatchSizes[] = {64, 256, 1024, 4096};

std::vector<std::vector<Count>> make_inputs(std::size_t width,
                                            std::size_t n) {
  std::mt19937_64 rng(2024);
  std::vector<std::vector<Count>> inputs;
  inputs.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    inputs.push_back(random_count_vector(rng, width, 1000));
  }
  return inputs;
}

double best_time(const std::function<void()>& fn) {
  double best = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct Sweep {
  const char* network;
  std::size_t batch_size;
  double width2_fraction;
  double vps[4];  // indexed like engine::registered_backends()
};

Sweep sweep(const char* name, const ExecutionPlan& plan, Runtime& rt,
            std::size_t batch_size) {
  const auto inputs = make_inputs(plan.width(), batch_size);
  Sweep s{name, batch_size, engine::plan_shape(plan).width2_fraction(), {}};
  const auto all = engine::registered_backends();
  for (std::size_t i = 0; i < all.size(); ++i) {
    const double t = best_time([&] {
      benchmark::DoNotOptimize(engine::sort_batch(plan, inputs, rt, all[i]));
    });
    s.vps[i] = static_cast<double>(batch_size) / t;
  }
  return s;
}

// Index of a backend in registered_backends() order.
std::size_t slot(EngineBackend b) {
  const auto all = engine::registered_backends();
  return static_cast<std::size_t>(
      std::find(all.begin(), all.end(), b) - all.begin());
}

void backend_bench(benchmark::State& state, EngineBackend b) {
  static const Network net = make_bitonic_network(5);
  const ExecutionPlan plan = compile_plan(net);
  const auto inputs = make_inputs(net.width(), 4096);
  Runtime rt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine::sort_batch(plan, inputs, rt, b));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}

void BM_BatchBitonic32(benchmark::State& state) {
  backend_bench(state, EngineBackend::kBatch);
}
BENCHMARK(BM_BatchBitonic32)->Unit(benchmark::kMillisecond);

void BM_SimdBitonic32(benchmark::State& state) {
  backend_bench(state, EngineBackend::kSimd);
}
BENCHMARK(BM_SimdBitonic32)->Unit(benchmark::kMillisecond);

void BM_ThreadedBitonic32(benchmark::State& state) {
  backend_bench(state, EngineBackend::kThreaded);
}
BENCHMARK(BM_ThreadedBitonic32)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool gated = engine::simd::compiled_in();
  bench::print_header(
      "E-SIMD  Explicit AVX2 kernels vs auto-vectorized batch tier",
      "simd >= batch vectors/sec on width-2-dominated plans (AVX2 hosts)");
  if (!gated) {
    std::printf("AVX2 kernels not compiled in: report is informational, "
                "the gate is off.\n");
  }

  struct Net {
    const char* name;
    Network net;
    bool width2_dominated;
  };
  std::vector<Net> nets;
  nets.push_back({"bitonic32", make_bitonic_network(5), true});
  nets.push_back({"batcher24", make_batcher_network(24), true});
  nets.push_back({"K(4x4x4)", make_k_network({4, 4, 4}), false});

  Runtime rt;
  std::printf("%-11s %6s %6s %12s %12s %12s %12s %8s\n", "network", "B",
              "w2frac", "scalar v/s", "batch v/s", "simd v/s",
              "threaded v/s", "simd/x");
  bench::print_row_rule();

  bench::JsonReport report("BENCH_simd.json", "simd_backends");
  const std::size_t sc = slot(EngineBackend::kScalar);
  const std::size_t ba = slot(EngineBackend::kBatch);
  const std::size_t si = slot(EngineBackend::kSimd);
  const std::size_t th = slot(EngineBackend::kThreaded);
  bool all_pass = true;
  for (const Net& n : nets) {
    const ExecutionPlan plan = compile_plan(n.net);
    double best_ratio = 0.0;
    for (const std::size_t batch_size : kBatchSizes) {
      const Sweep s = sweep(n.name, plan, rt, batch_size);
      const double ratio = s.vps[si] / s.vps[ba];
      best_ratio = std::max(best_ratio, ratio);
      std::printf("%-11s %6zu %6.2f %12.0f %12.0f %12.0f %12.0f %7.2fx\n",
                  s.network, s.batch_size, s.width2_fraction, s.vps[sc],
                  s.vps[ba], s.vps[si], s.vps[th], ratio);
      report.begin_row();
      report.kv("network", s.network);
      report.kv("batch_size", static_cast<std::uint64_t>(s.batch_size));
      report.kv("width2_fraction", s.width2_fraction);
      report.kv("scalar_vps", s.vps[sc]);
      report.kv("batch_vps", s.vps[ba]);
      report.kv("simd_vps", s.vps[si]);
      report.kv("threaded_vps", s.vps[th]);
      report.kv("simd_over_batch", ratio);
      report.kv("gated", gated && n.width2_dominated);
      report.end_row();
    }
    if (n.width2_dominated) {
      // Gate on the best batch size: the claim is "the explicit kernels
      // win where they apply", not "they win at every sweep point" —
      // tiny batches are dominated by pack/unpack in both tiers. 5%
      // tolerance absorbs timer noise on shared CI runners.
      const bool pass = !gated || best_ratio >= 0.95;
      all_pass = all_pass && pass;
      std::printf("%-11s best simd/batch %.2fx %s\n", n.name, best_ratio,
                  gated ? bench::mark(pass) : "(info)");
    }
    bench::print_row_rule();
  }
  const bool ok = report.finish(all_pass);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return ok ? 0 : 1;
}
