// E1 — Proposition 1: depth(C) = (n-1) d + ((n-1)(n-2)/2) depth(S) for a
// generic base of depth d. Instantiates the generic construction with bases
// of several depths and checks the recurrence, then times construction.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/counting_network.h"
#include "core/factorization.h"

namespace {

using namespace scn;

/// A base C(p, q) of configurable depth: `d` stacked pq-balancers.
BaseFactory stacked_base(std::size_t d) {
  return [d](NetworkBuilder& builder, std::span<const Wire> wires,
             std::size_t, std::size_t) -> std::vector<Wire> {
    for (std::size_t i = 0; i < d; ++i) builder.add_balancer(wires);
    return {wires.begin(), wires.end()};
  };
}

void print_table() {
  bench::print_header(
      "E1  Proposition 1 (generic C depth recurrence)",
      "depth(C) = (n-1) d + (n^2/2 - 3n/2 + 1) depth(S), depth(S) = 2d+1");
  std::printf("%-14s %3s %3s %9s %9s %6s\n", "factors", "n", "d", "formula",
              "measured", "check");
  bench::print_row_rule();
  for (const std::size_t d : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const std::vector<std::size_t>& f :
         {std::vector<std::size_t>{2, 2, 2}, {2, 2, 2, 2}, {3, 2, 2},
          {2, 3, 2, 2}, {2, 2, 2, 2, 2}}) {
      const Network net = make_counting_network(
          f, stacked_base(d), StaircaseVariant::kRebalanceCount);
      const std::size_t formula = c_depth_formula(f.size(), d, 2 * d + 1);
      const bool ok = net.depth() == formula;
      std::printf("%-14s %3zu %3zu %9zu %9u %6s\n", format_factors(f).c_str(),
                  f.size(), d, formula, net.depth(), bench::mark(ok));
    }
  }
  std::printf("\n");
}

void BM_BuildGenericC(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<std::size_t> factors(n, 2);
  const BaseFactory base = stacked_base(2);
  for (auto _ : state) {
    const Network net =
        make_counting_network(factors, base, StaircaseVariant::kRebalanceCount);
    benchmark::DoNotOptimize(net.gate_count());
  }
}
BENCHMARK(BM_BuildGenericC)->DenseRange(2, 10);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
