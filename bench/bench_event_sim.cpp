// E7' — the family crossover on the discrete-event contention simulator:
// mean token latency vs concurrency for width-64 family members. Wide
// balancers win uncontended (shallow path); as clients grow their long
// serial sections back up and narrower-deeper members take over —
// the Felten-LaMarca-Ladner shape, regenerated deterministically.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/k_network.h"
#include "sim/event_sim.h"

namespace {

using namespace scn;

struct Member {
  const char* name;
  Network net;
};

std::vector<Member> members() {
  std::vector<Member> out;
  out.push_back({"K(64)", make_k_network({64})});
  out.push_back({"K(8x8)", make_k_network({8, 8})});
  out.push_back({"K(4x4x4)", make_k_network({4, 4, 4})});
  out.push_back({"K(2^6)", make_k_network({2, 2, 2, 2, 2, 2})});
  return out;
}

void print_table() {
  bench::print_header(
      "E7'  Simulated mean latency vs concurrency (width 64)",
      "wide balancers win at low load; deep-narrow wins once hot "
      "balancers saturate — the crossover of Felten et al. [9]");
  const auto ms = members();
  std::printf("%-10s |", "clients");
  for (const auto& m : ms) std::printf(" %-10s", m.name);
  std::printf("  winner\n");
  bench::print_row_rule();
  for (const std::size_t clients : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    EventSimConfig c;
    c.clients = clients;
    c.tokens_per_client = 300;
    c.service_per_port = 0.5;  // wider balancer => longer critical section
    std::printf("%-10zu |", clients);
    double best = 1e300;
    const char* best_name = "";
    for (const auto& m : ms) {
      const EventSimResult r = run_event_simulation(m.net, c);
      std::printf(" %-10.1f", r.mean_latency);
      if (r.mean_latency < best) {
        best = r.mean_latency;
        best_name = m.name;
      }
    }
    std::printf("  %s\n", best_name);
  }
  std::printf("\n");
}

void BM_EventSim(benchmark::State& state) {
  const Network net = make_k_network({4, 4, 4});
  EventSimConfig c;
  c.clients = static_cast<std::size_t>(state.range(0));
  c.tokens_per_client = 200;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_event_simulation(net, c).mean_latency);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(c.clients * c.tokens_per_client));
}
BENCHMARK(BM_EventSim)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
