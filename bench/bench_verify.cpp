// Verifier engineering: scalar vs bit-sliced exhaustive 0-1 checks and
// sequential vs parallel counting sweeps. The bit-sliced path is what makes
// the mega-sweep tests affordable.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/k_network.h"
#include "verify/counting_verify.h"
#include "verify/fast_zero_one.h"
#include "verify/parallel_verify.h"

namespace {

using namespace scn;

void print_table() {
  bench::print_header("Verifier engineering",
                      "bit-sliced 0-1 evaluation processes 64 inputs per "
                      "word pass (~64x scalar)");
  const Network net = make_k_network({2, 3, 2});
  const auto slow = verify_sorting_exhaustive(net);
  const auto fast = fast_verify_sorting_exhaustive(net);
  std::printf("width 12: scalar checked %llu, bit-sliced checked %llu, "
              "verdicts agree: %s\n\n",
              static_cast<unsigned long long>(slow.inputs_checked),
              static_cast<unsigned long long>(fast.inputs_checked),
              bench::mark(slow.ok == fast.ok));
}

void BM_ScalarExhaustive(benchmark::State& state) {
  const Network net = make_k_network({2, 3, 2});  // width 12
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_sorting_exhaustive(net).ok);
  }
}
BENCHMARK(BM_ScalarExhaustive);

void BM_BitSlicedExhaustive(benchmark::State& state) {
  const Network net = make_k_network({2, 3, 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fast_verify_sorting_exhaustive(net).ok);
  }
}
BENCHMARK(BM_BitSlicedExhaustive);

void BM_BitSlicedWidth20(benchmark::State& state) {
  const Network net = make_k_network({5, 2, 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fast_verify_sorting_exhaustive(net).ok);
  }
}
BENCHMARK(BM_BitSlicedWidth20)->Unit(benchmark::kMillisecond);

void BM_SequentialCountingVerify(benchmark::State& state) {
  const Network net = make_k_network({4, 4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_counting(net).ok);
  }
}
BENCHMARK(BM_SequentialCountingVerify);

void BM_ParallelCountingVerify(benchmark::State& state) {
  const Network net = make_k_network({4, 4});
  ParallelVerifyOptions opts;
  opts.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_counting_parallel(net, opts).ok);
  }
}
BENCHMARK(BM_ParallelCountingVerify)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
