// Verifier engineering: scalar vs bit-sliced exhaustive 0-1 checks and
// sequential vs parallel counting sweeps. The bit-sliced path is what makes
// the mega-sweep tests affordable.
//
// The preamble emits BENCH_verify.json: one row per verifier pair with
// the inputs-checked counts and verdict-agreement flags.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/k_network.h"
#include "verify/counting_verify.h"
#include "verify/fast_zero_one.h"
#include "verify/parallel_verify.h"

namespace {

using namespace scn;

void print_table() {
  bench::print_header("Verifier engineering",
                      "bit-sliced 0-1 evaluation processes 64 inputs per "
                      "word pass (~64x scalar)");
  bench::JsonReport report("BENCH_verify.json", "verifier_engineering");

  const Network net = make_k_network({2, 3, 2});
  const auto slow = verify_sorting_exhaustive(net);
  const auto fast = fast_verify_sorting_exhaustive(net);
  const bool zero_one_agree = slow.ok == fast.ok;
  std::printf("width 12: scalar checked %llu, bit-sliced checked %llu, "
              "verdicts agree: %s\n",
              static_cast<unsigned long long>(slow.inputs_checked),
              static_cast<unsigned long long>(fast.inputs_checked),
              bench::mark(zero_one_agree));
  report.begin_row();
  report.kv("pair", "scalar_vs_bitsliced_zero_one");
  report.kv("width", static_cast<std::uint64_t>(net.width()));
  report.kv("scalar_inputs_checked",
            static_cast<std::uint64_t>(slow.inputs_checked));
  report.kv("bitsliced_inputs_checked",
            static_cast<std::uint64_t>(fast.inputs_checked));
  report.kv("agree", zero_one_agree);
  report.end_row();

  const Network count_net = make_k_network({4, 4});
  const bool seq_ok = verify_counting(count_net).ok;
  ParallelVerifyOptions opts;
  opts.threads = 2;
  const bool par_ok = verify_counting_parallel(count_net, opts).ok;
  const bool counting_agree = seq_ok == par_ok;
  std::printf("width 16: sequential vs parallel counting verdicts agree: "
              "%s\n\n",
              bench::mark(counting_agree));
  report.begin_row();
  report.kv("pair", "sequential_vs_parallel_counting");
  report.kv("width", static_cast<std::uint64_t>(count_net.width()));
  report.kv("agree", counting_agree);
  report.end_row();

  report.finish(zero_one_agree && counting_agree);
  std::printf("\n");
}

void BM_ScalarExhaustive(benchmark::State& state) {
  const Network net = make_k_network({2, 3, 2});  // width 12
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_sorting_exhaustive(net).ok);
  }
}
BENCHMARK(BM_ScalarExhaustive);

void BM_BitSlicedExhaustive(benchmark::State& state) {
  const Network net = make_k_network({2, 3, 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fast_verify_sorting_exhaustive(net).ok);
  }
}
BENCHMARK(BM_BitSlicedExhaustive);

void BM_BitSlicedWidth20(benchmark::State& state) {
  const Network net = make_k_network({5, 2, 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fast_verify_sorting_exhaustive(net).ok);
  }
}
BENCHMARK(BM_BitSlicedWidth20)->Unit(benchmark::kMillisecond);

void BM_SequentialCountingVerify(benchmark::State& state) {
  const Network net = make_k_network({4, 4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_counting(net).ok);
  }
}
BENCHMARK(BM_SequentialCountingVerify);

void BM_ParallelCountingVerify(benchmark::State& state) {
  const Network net = make_k_network({4, 4});
  ParallelVerifyOptions opts;
  opts.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_counting_parallel(net, opts).ok);
  }
}
BENCHMARK(BM_ParallelCountingVerify)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
