// E3 — Theorem 7: depth(L(p0..pn-1)) <= 9.5 n^2 - 12.5 n + 3 with balancers
// no wider than max(p_i). Prints bound-vs-measured (the measured depth is
// usually much smaller because degenerate R(p, q) quadrants shrink), then
// times L construction.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.h"
#include "core/factorization.h"
#include "core/l_network.h"

namespace {

using namespace scn;

const std::vector<std::vector<std::size_t>>& cases() {
  static const std::vector<std::vector<std::size_t>> kCases = {
      {2, 2},       {3, 3},          {5, 5},       {7, 7},
      {2, 2, 2},    {3, 3, 3},       {5, 4, 3},    {7, 5, 3},
      {2, 2, 2, 2}, {3, 3, 3, 3},    {5, 4, 3, 2}, {6, 5, 4, 3},
      {2, 2, 2, 2, 2}, {3, 2, 3, 2, 3}, {4, 4, 4, 4, 4},
  };
  return kCases;
}

void print_table() {
  bench::print_header("E3  Theorem 7 (the L network)",
                      "depth(L) <= 9.5 n^2 - 12.5 n + 3; "
                      "balancers <= max(p_i)");
  std::printf("%-18s %6s %7s %9s %8s %9s %6s\n", "factors", "width", "bound",
              "measured", "maxgate", "maxfactor", "check");
  bench::print_row_rule();
  for (const auto& f : cases()) {
    const Network net = make_l_network(f);
    const std::size_t bound = l_depth_bound(f.size());
    const std::size_t mf = std::max<std::size_t>(2, max_factor(f));
    const bool ok = net.depth() <= bound && net.max_gate_width() <= mf;
    std::printf("%-18s %6zu %7zu %9u %8u %9zu %6s\n",
                format_factors(f).c_str(), net.width(), bound, net.depth(),
                net.max_gate_width(), max_factor(f), bench::mark(ok));
  }
  std::printf("\n");
}

void BM_BuildL(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<std::size_t> factors(n, 3);
  for (auto _ : state) {
    const Network net = make_l_network(factors);
    benchmark::DoNotOptimize(net.gate_count());
  }
  state.counters["width"] = std::pow(3.0, static_cast<double>(n));
}
BENCHMARK(BM_BuildL)->DenseRange(2, 7);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
