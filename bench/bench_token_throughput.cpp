// E12 — token routing cost: tokens/second through K, L and the bitonic
// baseline under the sequential simulator and under real threads, across
// thread counts. The per-token work is the network depth, so shallow-wide
// members route faster until balancer contention bites. The preamble
// measures hops/token and concurrent throughput per network and thread
// count, verifies each run's outputs keep the step property, and emits
// BENCH_tokens.json (exit non-zero on a step violation).
#include <benchmark/benchmark.h>

#include "baseline/bitonic.h"
#include "bench_common.h"
#include "core/k_network.h"
#include "core/l_network.h"
#include "sim/concurrent_sim.h"
#include "sim/token_sim.h"
#include "verify/checkers.h"

namespace {

using namespace scn;

Network pick_network(int which) {
  switch (which) {
    case 0:
      return make_k_network({4, 4, 4});   // shallow, wide balancers
    case 1:
      return make_l_network({4, 4, 4});   // deeper, narrow balancers
    default:
      return make_bitonic_network(6);     // classic 2-balancer baseline
  }
}

const char* network_name(int which) {
  switch (which) {
    case 0:
      return "K(4x4x4)";
    case 1:
      return "L(4x4x4)";
    default:
      return "bitonic64";
  }
}

int emit_report() {
  bench::print_header("E12  Token-routing inventory (width 64)",
                      "per-token hop count == path depth; throughput scales "
                      "inversely with depth until contention dominates");
  std::printf("%-12s %7s %9s %8s %14s %6s\n", "network", "depth",
              "hops/token", "threads", "tokens/sec", "step");
  bench::print_row_rule();

  bench::JsonReport report("BENCH_tokens.json", "token_throughput");
  bool all_step = true;
  for (int which = 0; which < 3; ++which) {
    const Network net = pick_network(which);
    std::vector<Count> in(net.width(), 4);
    const auto sim =
        run_token_simulation(net, in, SchedulePolicy::kOneTokenAtATime);
    const double hops_per_token = static_cast<double>(sim.hops) /
                                  static_cast<double>(4 * net.width());
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      ConcurrentNetwork cn(net);
      const auto res = run_concurrent(cn, threads, 20000);
      // Counting networks guarantee the step property at quiescence; the
      // bitonic baseline is a counting network too, so every row must hold.
      const bool step = has_step_property(res.outputs);
      all_step = all_step && step;
      std::printf("%-12s %7u %9.2f %8zu %14.0f %6s\n", network_name(which),
                  net.depth(), hops_per_token, threads,
                  res.tokens_per_second(), bench::mark(step));
      report.begin_row();
      report.kv("network", network_name(which));
      report.kv("depth", static_cast<std::uint64_t>(net.depth()));
      report.kv("hops_per_token", hops_per_token);
      report.kv("threads", static_cast<std::uint64_t>(threads));
      report.kv("tokens_per_sec", res.tokens_per_second());
      report.kv("step_property", step);
      report.end_row();
    }
  }
  std::printf("\n");
  return report.finish(all_step) ? 0 : 1;
}

void BM_SequentialTokens(benchmark::State& state) {
  const Network net = pick_network(static_cast<int>(state.range(0)));
  const LinkedNetwork linked(net);
  std::vector<Count> in(net.width(), 16);
  std::uint64_t tokens = 0;
  for (auto _ : state) {
    const auto res =
        run_token_simulation(linked, in, SchedulePolicy::kRoundRobin, 1);
    benchmark::DoNotOptimize(res.outputs.data());
    tokens += 16 * net.width();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tokens));
  state.SetLabel(network_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_SequentialTokens)->DenseRange(0, 2);

void BM_ConcurrentTokens(benchmark::State& state) {
  const Network net = pick_network(static_cast<int>(state.range(0)));
  const auto threads = static_cast<std::size_t>(state.range(1));
  ConcurrentNetwork cn(net);
  std::uint64_t tokens = 0;
  for (auto _ : state) {
    cn.reset();
    const auto res = run_concurrent(cn, threads, 8000);
    tokens += res.tokens;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tokens));
  state.SetLabel(std::string(network_name(static_cast<int>(state.range(0)))) +
                 " x" + std::to_string(threads));
}
BENCHMARK(BM_ConcurrentTokens)
    ->ArgsProduct({{0, 1, 2}, {1, 2, 4, 8}})
    ->MinTime(0.05)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  const int gate = emit_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return gate;
}
